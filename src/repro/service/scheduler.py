"""Async job scheduler: queued CutQC jobs over a shared artifact store.

A *job* is one end-to-end CutQC evaluation — cut search, variant
execution, and a query (FD, DD, streamed top-k, or a server-side
*variational* optimizer loop over a warm
:class:`~repro.core.variational.VariationalSession`) — described by a
:class:`JobSpec` and tracked by a :class:`JobRecord` through the states::

    queued -> cutting -> evaluating -> querying -> done
                                   \\-> failed | cancelled

The :class:`JobScheduler` runs jobs on a pool of worker threads.  Each
stage is *resumable*: before computing, the worker consults the
content-addressed :class:`~repro.service.store.ArtifactStore` under the
stage's fingerprint and, on a hit, restores the checkpoint instead —
repeat jobs skip cut search and variant evaluation entirely, and sibling
jobs (same circuit+cut, different query) skip straight to the query
stage.  Per-stage wall-clock and cache-hit flags are recorded on the
record, and :meth:`JobScheduler.stats` aggregates them across the job
history — the serving-side observability the HTTP ``/stats`` endpoint
exposes.

Durability and scale-out (see :mod:`repro.service.journal` and
:mod:`repro.service.tenancy`):

* every submission, state transition and cancellation is appended to a
  **journal** inside the store (``jobs/journal.jsonl``); a restarted
  scheduler replays it, steals claims whose owner pid died, and resumes
  interrupted jobs — the store checkpoints turn "resume" into cache
  hits on every stage that already completed;
* dispatch goes through a per-tenant **weighted-fair queue** with
  admission quotas (:class:`~repro.service.tenancy.TenantConfig`);
* N schedulers (``serve --replicas N``, or N processes on one store
  dir) tail the same journal: any server accepts a submission, exactly
  one executes it (``O_EXCL`` **claim files**), and terminal records are
  persisted to the store so any server answers the result query.
"""

from __future__ import annotations

import os
import random
import threading
import time
import uuid
import weakref
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..circuits import QuantumCircuit
from ..circuits.qasm import from_qasm
from ..core import CutQC
from ..cutting.searcher import DEFAULT_MAX_CUTS, DEFAULT_MAX_SUBCIRCUITS
from ..faults import PoolUnrecoverableError, is_transient
from ..library import BENCHMARKS, get_benchmark
from ..obs import trace
from ..obs.metrics import get_registry
from ..postprocess.parallel import WorkerPool
from .journal import JobJournal
from .store import ArtifactStore
from .tenancy import (
    DEFAULT_TENANT,
    FairQueue,
    QuotaExceededError,
    TenantConfig,
)

__all__ = ["JobSpec", "JobRecord", "JobScheduler", "JOB_STATES", "QUERY_TYPES"]

_JOB_STAGE_SECONDS = get_registry().histogram(
    "repro_job_stage_seconds",
    "Scheduler job stage wall time by stage (cut/evaluate/query/total) "
    "and tenant.",
    ("stage", "tenant"),
)
_JOBS = get_registry().counter(
    "repro_jobs_total",
    "Jobs reaching a terminal state, by state and tenant.",
    ("state", "tenant"),
)
_QUEUE_DEPTH = get_registry().gauge(
    "repro_queue_depth",
    "Jobs waiting in the scheduler's fair queue, per tenant.",
    ("tenant",),
)
_JOBS_RUNNING = get_registry().gauge(
    "repro_jobs_running",
    "Jobs currently executing, per tenant.",
    ("tenant",),
)
_QUOTA_REJECTIONS = get_registry().counter(
    "repro_quota_rejections_total",
    "Submissions rejected by per-tenant admission control.",
    ("tenant", "reason"),
)
_STAGE_RETRIES = get_registry().counter(
    "repro_scheduler_stage_retries_total",
    "Transient stage failures retried by the staged-retry policy.",
    ("stage",),
)
_DEGRADED_MODE = get_registry().gauge(
    "repro_scheduler_degraded_mode",
    "1 while the scheduler serves jobs serially because its worker "
    "pool is unrecoverable.",
)

JOB_STATES = (
    "queued", "cutting", "evaluating", "querying", "done", "failed",
    "cancelled",
)
QUERY_TYPES = ("fd", "dd", "top_k", "variational")

#: States a job can never leave.
_TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


@dataclass
class JobSpec:
    """Everything that defines one job: circuit, cut budget, query.

    The circuit is addressed either by library name (``benchmark`` +
    ``qubits`` [+ ``seed``]) or as inline OpenQASM (``qasm``).
    """

    device_size: int
    benchmark: Optional[str] = None
    qubits: Optional[int] = None
    qasm: Optional[str] = None
    seed: int = 0
    #: Submitting tenant — the unit of fair scheduling and quotas.
    tenant: str = DEFAULT_TENANT
    max_subcircuits: int = DEFAULT_MAX_SUBCIRCUITS
    max_cuts: int = DEFAULT_MAX_CUTS
    method: str = "auto"
    # query --------------------------------------------------------------
    query: str = "fd"
    top: int = 5
    active: int = 2
    recursions: int = 8
    zoom_width: int = 1
    threshold: float = 0.25
    shard_qubits: Optional[int] = None
    # variational (query == "variational", benchmark == "qaoa") ----------
    iterations: int = 20
    layers: int = 1
    #: MaxCut instance: ``degree``-regular random graph on ``qubits``
    #: nodes (``0`` = the default ring graph).
    degree: int = 3
    # execution ----------------------------------------------------------
    device: Optional[str] = None
    shots: Optional[int] = None
    strategy: str = "auto"
    workers: int = 1
    #: ``None`` = batching on by default (exact *and* device paths);
    #: ``0`` = the legacy per-variant escape hatch.
    sim_batch: Optional[int] = None
    fusion_width: int = 2
    trajectories: int = 24
    noisy_method: str = "trajectory"

    def validate(self) -> None:
        if (self.benchmark is None) == (self.qasm is None):
            raise ValueError(
                "address the circuit by benchmark name or inline qasm "
                "(exactly one)"
            )
        if self.benchmark is not None:
            if self.benchmark not in BENCHMARKS:
                raise ValueError(
                    f"unknown benchmark {self.benchmark!r}; "
                    f"expected one of {BENCHMARKS}"
                )
            if self.qubits is None or self.qubits < 2:
                raise ValueError("library circuits need qubits >= 2")
        if self.device_size < 2:
            raise ValueError("device_size must be >= 2")
        if (
            not isinstance(self.tenant, str)
            or not 0 < len(self.tenant) <= 64
            or not all(c.isalnum() or c in "._-" for c in self.tenant)
        ):
            raise ValueError(
                "tenant must be 1-64 chars of [A-Za-z0-9._-]"
            )
        if self.query not in QUERY_TYPES:
            raise ValueError(
                f"unknown query type {self.query!r}; "
                f"expected one of {QUERY_TYPES}"
            )
        if self.query == "dd" and (self.active < 1 or self.recursions < 1):
            raise ValueError("dd queries need active >= 1, recursions >= 1")
        if self.query == "variational":
            if self.benchmark != "qaoa":
                raise ValueError(
                    "variational jobs run the server-side MaxCut optimizer "
                    "and require benchmark='qaoa'"
                )
            if self.iterations < 1:
                raise ValueError("iterations must be positive")
            if self.layers < 1:
                raise ValueError("layers must be positive")
            if self.degree < 0:
                raise ValueError("degree must be >= 0 (0 = ring graph)")
            if self.degree:
                if self.degree >= self.qubits:
                    raise ValueError("degree must be smaller than qubits")
                if (self.degree * self.qubits) % 2:
                    raise ValueError("degree * qubits must be even")
        if self.zoom_width < 1:
            raise ValueError("zoom_width must be positive")
        if self.top < 1:
            raise ValueError("top must be positive")
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.sim_batch is not None and self.sim_batch < 0:
            raise ValueError("sim_batch must be >= 0")
        from ..sim.batch import MAX_FUSION_WIDTH

        if not 1 <= self.fusion_width <= MAX_FUSION_WIDTH:
            raise ValueError(
                f"fusion_width must be in [1, {MAX_FUSION_WIDTH}]"
            )
        if self.trajectories < 1:
            raise ValueError("trajectories must be positive")
        if self.noisy_method not in ("trajectory", "density"):
            raise ValueError(
                "noisy_method must be 'trajectory' or 'density'"
            )

    # ------------------------------------------------------------------
    def build_circuit(self) -> QuantumCircuit:
        if self.qasm is not None:
            return from_qasm(self.qasm)
        kwargs = {}
        if self.benchmark in ("supremacy", "adder"):
            kwargs["seed"] = self.seed
        elif self.benchmark == "qaoa":
            kwargs["seed"] = self.seed
            kwargs["layers"] = self.layers
            kwargs["edges"] = self.qaoa_edges()
        return get_benchmark(self.benchmark, self.qubits, **kwargs)

    def qaoa_edges(self) -> List:
        """The MaxCut instance this spec optimizes over."""
        from ..library.qaoa import random_regular_graph, ring_graph

        if self.degree:
            return random_regular_graph(
                self.qubits, degree=self.degree, seed=self.seed
            )
        return ring_graph(self.qubits)

    @property
    def batched(self) -> bool:
        """Whether this spec evaluates through the batched engine
        (``sim_batch`` unset defaults to on)."""
        return self.sim_batch is None or self.sim_batch > 0

    def backend_tag(self) -> str:
        """The evaluation-fingerprint backend config tag.

        Batched and per-variant evaluation agree to ~1e-10 but are not
        bit-identical, so they address distinct store artifacts; the
        batched tags are *versioned* (``:v2``/``:v1``) so artifacts
        cached under older batched semantics recompute instead of
        silently colliding after an engine change.
        """
        if self.device is not None:
            if self.batched:
                return f"device:{self.device}:{self.noisy_method}:batched:v1"
            return f"device:{self.device}"
        return "statevector:batched:v2" if self.batched else "statevector"

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C401
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown job fields: {sorted(unknown)}")
        if "device_size" not in payload:
            raise ValueError("device_size is required")
        return cls(**payload)


@dataclass
class JobRecord:
    """One job's lifecycle: state, per-stage timing, cache hits, result."""

    job_id: str
    spec: JobSpec
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    timings: Dict[str, float] = field(default_factory=dict)
    cache_hits: Dict[str, bool] = field(default_factory=dict)
    fingerprints: Dict[str, str] = field(default_factory=dict)
    #: Variant-execution accounting (mode, dedup, body passes) when the
    #: evaluate stage actually ran (None on a store cache hit).
    execution: Optional[Dict] = None
    #: Variational jobs append one entry per optimizer iteration *while
    #: running* — ``GET /jobs/<id>`` streams live progress.
    iterations: List[Dict] = field(default_factory=list)
    result: Optional[Dict] = None
    error: Optional[str] = None
    cancel_requested: bool = False
    #: Attempts consumed per stage by the staged-retry policy (1 for a
    #: stage that succeeded first try).
    attempts: Dict[str, int] = field(default_factory=dict)
    #: True when the job completed through serial in-process evaluation
    #: because the scheduler's worker pool was unrecoverable.
    degraded: bool = False
    #: The job's span tree (set once the job reaches a terminal state).
    trace: Optional[Dict] = None
    #: Owner id of the scheduler executing (or having executed) the job;
    #: ``None`` while unclaimed.  Set from journal events for jobs run
    #: by a peer server.
    owner: Optional[str] = None
    #: ``(kind, key)`` store artifacts pinned against LRU eviction while
    #: this job runs; released by the worker at the terminal state.
    pins: List[Tuple[str, str]] = field(default_factory=list)
    #: Guards the mutable fields: the worker thread updates state,
    #: timings and cache hits at stage boundaries while pollers
    #: serialize the record — without the lock a reader can observe a
    #: half-written stage transition (state advanced, timing missing).
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )
    #: Signalled on every state transition; :meth:`JobScheduler.wait`
    #: blocks on it instead of busy-polling.
    _cond: threading.Condition = field(init=False, repr=False, compare=False)
    #: True once terminal bookkeeping (trace/journal/store document) has
    #: completed — the point the record stops changing entirely.
    _settled: bool = field(
        default=False, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._cond = threading.Condition(self._lock)

    def mark_settled(self) -> None:
        with self._lock:
            self._settled = True
            self._cond.notify_all()

    @property
    def done(self) -> bool:
        return self.state in _TERMINAL_STATES

    # -- locked mutators (worker thread) -------------------------------
    def update(self, **fields) -> None:
        """Atomically set record attributes."""
        with self._lock:
            for name, value in fields.items():
                setattr(self, name, value)
            if "state" in fields:
                self._cond.notify_all()

    def set_timing(self, stage: str, seconds: float) -> None:
        with self._lock:
            self.timings[stage] = seconds
        _JOB_STAGE_SECONDS.observe(
            seconds, stage=stage, tenant=self.spec.tenant
        )

    def set_cache_hit(self, stage: str, hit: bool) -> None:
        with self._lock:
            self.cache_hits[stage] = bool(hit)

    def set_fingerprint(self, stage: str, key: str) -> None:
        with self._lock:
            self.fingerprints[stage] = key

    def append_iteration(self, entry: Dict) -> None:
        with self._lock:
            self.iterations.append(entry)

    # -- locked snapshots (poller threads) -----------------------------
    def stats_view(
        self,
    ) -> Tuple[str, Dict[str, float], Dict[str, bool], Optional[Dict]]:
        """A consistent (state, timings, cache_hits, execution) snapshot."""
        with self._lock:
            return (
                self.state,
                dict(self.timings),
                dict(self.cache_hits),
                self.execution,
            )

    def as_dict(self, include_result: bool = False) -> Dict:
        with self._lock:
            document = {
                "job_id": self.job_id,
                "state": self.state,
                "tenant": self.spec.tenant,
                "owner": self.owner,
                "spec": self.spec.to_dict(),
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "timings": dict(self.timings),
                "cache_hits": dict(self.cache_hits),
                "fingerprints": dict(self.fingerprints),
                "execution": self.execution,
                "error": self.error,
                "attempts": dict(self.attempts),
                "degraded": self.degraded,
            }
            if self.iterations or self.spec.query == "variational":
                document["iterations"] = list(self.iterations)
            if include_result:
                document["result"] = self.result
        return document


class JobScheduler:
    """Thread-pool scheduler executing jobs against a shared store.

    With ``pool_workers > 0`` (or an injected ``worker_pool``) the
    scheduler holds one persistent
    :class:`~repro.postprocess.parallel.WorkerPool` for its whole
    lifetime and hands it to every job's pipeline — variant execution,
    streaming-FD shards and DD zoom rounds of *all* jobs share one set
    of warm workers, and the pool's per-stage worker statistics are
    reported by :meth:`stats` (the HTTP ``GET /stats`` payload).
    """

    def __init__(
        self,
        store: ArtifactStore,
        workers: int = 2,
        autostart: bool = True,
        pool_workers: int = 0,
        worker_pool: Optional[WorkerPool] = None,
        tenants=None,
        journal: bool = True,
        journal_poll: float = 0.25,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        degrade: bool = True,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        if pool_workers < 0:
            raise ValueError("pool_workers must be >= 0")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        self.store = store
        self.num_workers = int(workers)
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.degrade = bool(degrade)
        self._retry_rng = random.Random()
        self._owns_pool = worker_pool is None and pool_workers > 0
        if worker_pool is None and pool_workers > 0:
            worker_pool = WorkerPool(pool_workers)
        self.worker_pool = worker_pool
        self.tenants = TenantConfig.coerce(tenants)
        self._queue = FairQueue(self.tenants)
        self._records: Dict[str, JobRecord] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._tail_thread: Optional[threading.Thread] = None
        self._started = False
        self._shutdown = False
        self.started_at = time.time()
        #: Unique executor identity, stamped on claims and journal events.
        self.owner_id = f"sched-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.journal = (
            JobJournal(self.store.root / "jobs") if journal else None
        )
        self._journal_poll = max(0.01, float(journal_poll))
        if self.journal is not None:
            self._replay_journal()
        self._register_depth_collector()
        if autostart:
            self.start()

    def _register_depth_collector(self) -> None:
        # Pull-style gauges via a weakly-bound collector: the registry
        # outlives schedulers (tests create hundreds), so a strong ref
        # here would pin every scheduler ever created.
        ref = weakref.ref(self)

        def collect(_registry) -> None:
            scheduler = ref()
            if scheduler is None or scheduler._shutdown:
                return
            running = scheduler._queue.running()
            for tenant, depth in scheduler._queue.depths().items():
                _QUEUE_DEPTH.set(depth, tenant=tenant)
                _JOBS_RUNNING.set(running.get(tenant, 0), tenant=tenant)

        get_registry().add_collector(collect)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._started:
            return
        self._started = True
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"cutqc-job-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        if self.journal is not None:
            self._tail_thread = threading.Thread(
                target=self._tail_loop, name="cutqc-journal-tail", daemon=True
            )
            self._tail_thread.start()

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the workers."""
        if self._shutdown:
            return
        self._shutdown = True
        self._queue.close()
        if wait:
            for thread in self._threads:
                thread.join(timeout=30)
            if self._tail_thread is not None:
                self._tail_thread.join(timeout=5)
        # Close the owned pool only once every job thread has exited —
        # tearing it down under a still-running job (wait=False, or a
        # join timeout) would fail that job with "worker pool is
        # closed" instead of letting it finish; the pool's finalizer
        # reaps it at interpreter exit in that case.
        if (
            self._owns_pool
            and self.worker_pool is not None
            and all(not thread.is_alive() for thread in self._threads)
        ):
            self.worker_pool.close()

    # ------------------------------------------------------------------
    # Journal: replay (restart recovery) and tail (peer discovery)
    # ------------------------------------------------------------------
    def _replay_journal(self) -> None:
        """Rebuild the job table from the journal and adopt orphans.

        Runs before the workers start.  Jobs whose last journaled state
        is terminal become read-only history (results rehydrate lazily
        from the store's job documents).  Non-terminal jobs are
        re-enqueued when unclaimed, or when their claim's pid is dead
        (the mid-stage-kill case) — stage checkpoints already in the
        store make the rerun resume, not restart.  Jobs claimed by a
        live peer stay as mirrors updated by the tail thread.
        """
        folded: Dict[str, Dict] = {}
        order: List[str] = []
        for event in self.journal.read_new():
            job_id = event.get("job_id")
            kind = event.get("type")
            if not isinstance(job_id, str):
                continue
            if kind == "submit" and job_id not in folded:
                folded[job_id] = {
                    "spec": event.get("spec"),
                    "state": "queued",
                    "submitted_at": event.get("ts"),
                }
                order.append(job_id)
            elif kind == "state" and job_id in folded:
                entry = folded[job_id]
                entry["state"] = event.get("state", entry["state"])
                entry["owner"] = event.get("owner")
                for field_name in ("error", "timings", "cache_hits"):
                    if event.get(field_name) is not None:
                        entry[field_name] = event[field_name]
                if event.get("state") in _TERMINAL_STATES:
                    entry["finished_at"] = event.get("ts")
            elif kind == "cancel" and job_id in folded:
                folded[job_id]["cancel"] = True
        for job_id in order:
            entry = folded[job_id]
            try:
                spec = JobSpec.from_dict(entry.get("spec") or {})
            except (TypeError, ValueError):
                continue  # unreadable record from an older format
            record = JobRecord(
                job_id=job_id,
                spec=spec,
                state=entry["state"],
                owner=entry.get("owner"),
            )
            if entry.get("submitted_at"):
                record.submitted_at = entry["submitted_at"]
            if entry.get("finished_at"):
                record.finished_at = entry["finished_at"]
            if entry.get("error"):
                record.error = entry["error"]
            if isinstance(entry.get("timings"), dict):
                record.timings = dict(entry["timings"])
            if isinstance(entry.get("cache_hits"), dict):
                record.cache_hits = {
                    k: bool(v) for k, v in entry["cache_hits"].items()
                }
            with self._lock:
                self._records[job_id] = record
                self._order.append(job_id)
            if record.done:
                record.mark_settled()
                continue
            if entry.get("cancel"):
                record.cancel_requested = True
            info = self.journal.claim_info(job_id)
            if info is None:
                requeue = True  # never started; any worker may claim
            elif self.journal.claim_is_stale(info) or info.get(
                "owner"
            ) == self.owner_id:
                requeue = self.journal.steal_claim(job_id, self.owner_id)
            else:
                requeue = False  # a live peer is executing it
            if requeue:
                record.update(state="queued", owner=None)
                self.journal.append(
                    "state", job_id, state="queued",
                    owner=self.owner_id, resumed=True,
                )
                self._queue.push(spec.tenant, job_id)

    def _tail_loop(self) -> None:
        """Poll the journal for events appended by peer schedulers."""
        while not self._shutdown:
            try:
                self._apply_events(self.journal.read_new())
            except Exception:  # pragma: no cover - keep the tail alive
                pass
            time.sleep(self._journal_poll)

    def _apply_events(self, events: List[Dict]) -> None:
        for event in events:
            job_id = event.get("job_id")
            kind = event.get("type")
            if not isinstance(job_id, str):
                continue
            if kind == "submit":
                with self._lock:
                    if job_id in self._records:
                        continue  # our own submission echoing back
                try:
                    spec = JobSpec.from_dict(event.get("spec") or {})
                except (TypeError, ValueError):
                    continue
                record = JobRecord(job_id=job_id, spec=spec)
                if event.get("ts"):
                    record.submitted_at = event["ts"]
                with self._lock:
                    if job_id in self._records:  # pragma: no cover - race
                        continue
                    self._records[job_id] = record
                    self._order.append(job_id)
                # Peer submissions enter our queue too: whichever
                # scheduler pops first wins the claim, the others skip.
                self._queue.push(spec.tenant, job_id)
            elif kind == "state":
                owner = event.get("owner")
                if owner == self.owner_id:
                    continue  # our own transition echoing back
                with self._lock:
                    record = self._records.get(job_id)
                if record is None:
                    continue
                with record._lock:
                    if record.owner == self.owner_id:
                        continue  # we execute it; local state is truth
                    state = event.get("state")
                    if state in JOB_STATES:
                        record.state = state
                        record._cond.notify_all()
                    record.owner = owner or record.owner
                    if event.get("error"):
                        record.error = event["error"]
                    if isinstance(event.get("timings"), dict):
                        record.timings = dict(event["timings"])
                    if isinstance(event.get("cache_hits"), dict):
                        record.cache_hits = {
                            k: bool(v)
                            for k, v in event["cache_hits"].items()
                        }
                    if record.state in _TERMINAL_STATES:
                        if record.finished_at is None:
                            record.finished_at = event.get("ts", time.time())
                        record._settled = True
                        record._cond.notify_all()
            elif kind == "cancel":
                with self._lock:
                    record = self._records.get(job_id)
                if record is None:
                    continue
                with record._lock:
                    if record.state not in _TERMINAL_STATES:
                        record.cancel_requested = True

    def _journal_state(self, record: JobRecord, **extra) -> None:
        if self.journal is None:
            return
        try:
            self.journal.append(
                "state", record.job_id, state=record.state,
                owner=self.owner_id, **extra,
            )
        except OSError:  # pragma: no cover - disk full / torn teardown
            pass

    def _advance(self, record: JobRecord, state: str) -> None:
        """Set a non-terminal state and journal the transition."""
        record.update(state=state)
        self._journal_state(record)

    def load_persisted(self, record: JobRecord) -> None:
        """Rehydrate a terminal record from the store's job document.

        Covers jobs executed by a peer server or a previous process:
        the journal carries their states and timings, but the (large)
        result document lives only in the store.
        """
        if self.journal is None or not record.done:
            return
        with record._lock:
            if record.result is not None or record.owner == self.owner_id:
                return
        document = self.store.get_job_document(record.job_id)
        if not document:
            return
        with record._lock:
            if record.result is None:
                record.result = document.get("result")
            if not record.timings and document.get("timings"):
                record.timings = dict(document["timings"])
            if not record.cache_hits and document.get("cache_hits"):
                record.cache_hits = {
                    k: bool(v)
                    for k, v in document["cache_hits"].items()
                }
            if record.execution is None:
                record.execution = document.get("execution")
            if not record.iterations and document.get("iterations"):
                record.iterations = list(document["iterations"])

    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> str:
        """Validate, admission-check and enqueue a job; returns its id.

        Raises :class:`~repro.service.tenancy.QuotaExceededError` when
        the tenant is over quota (mapped to HTTP 429 by the API layer).
        """
        if self._shutdown:
            raise RuntimeError("scheduler is shut down")
        spec.validate()
        try:
            self.tenants.admit(spec.tenant, self._queue.depth(spec.tenant))
        except QuotaExceededError as error:
            _QUOTA_REJECTIONS.inc(tenant=spec.tenant, reason=error.reason)
            raise
        job_id = f"job-{uuid.uuid4().hex[:12]}"
        record = JobRecord(job_id=job_id, spec=spec)
        with self._lock:
            self._records[job_id] = record
            self._order.append(job_id)
        if self.journal is not None:
            self.journal.append(
                "submit", job_id, tenant=spec.tenant, spec=spec.to_dict()
            )
        self._queue.push(spec.tenant, job_id)
        return job_id

    def queue_depth(self) -> int:
        """Total jobs waiting in the fair queue, across all tenants."""
        return sum(self._queue.depths().values())

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            try:
                return self._records[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def records(self) -> List[JobRecord]:
        with self._lock:
            return [self._records[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; returns False if already terminal.

        Queued jobs are dropped before they start; a running job stops at
        its next stage boundary.
        """
        record = self.get(job_id)
        with record._lock:
            if record.state in _TERMINAL_STATES:
                return False
            record.cancel_requested = True
            became_cancelled = False
            if record.state == "queued":
                record.state = "cancelled"
                record.finished_at = time.time()
                became_cancelled = True
                record._cond.notify_all()
        if self.journal is not None:
            self.journal.append("cancel", job_id)
            if became_cancelled:
                self._journal_state(record, terminal=True)
        if became_cancelled:
            record.mark_settled()
        return True

    def wait(
        self, job_id: str, timeout: float = 60.0, poll: float = 0.01
    ) -> JobRecord:
        """Block until the job reaches a terminal state (or timeout).

        Sleeps on the record's condition variable (notified on every
        state transition) instead of busy-polling; ``poll`` is kept for
        backward compatibility and only caps the wait slices, so a
        transition journaled by a *peer* scheduler — applied without a
        local notification path — is still observed promptly.
        """
        deadline = time.monotonic() + timeout
        record = self.get(job_id)
        slice_cap = max(0.01, min(1.0, float(poll) * 100))
        with record._cond:
            while not record.done:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still {record.state!r} "
                        f"after {timeout}s"
                    )
                record._cond.wait(min(remaining, slice_cap))
            # Terminal state is published *before* the worker's final
            # bookkeeping (trace/journal/store document); give that a
            # bounded grace so callers observe a fully-settled record.
            settle_deadline = min(deadline, time.monotonic() + 2.0)
            while not record._settled:
                remaining = settle_deadline - time.monotonic()
                if remaining <= 0:
                    break
                record._cond.wait(remaining)
        return record

    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """Aggregate serving stats: states, cache hits, stage latencies."""
        with self._lock:
            records = [self._records[job_id] for job_id in self._order]
        by_state = {state: 0 for state in JOB_STATES}
        stage_seconds: Dict[str, List[float]] = {}
        stage_hits: Dict[str, int] = {"cut": 0, "evaluate": 0}
        stage_misses: Dict[str, int] = {"cut": 0, "evaluate": 0}
        evaluate_modes: Dict[str, int] = {}
        by_tenant: Dict[str, Dict[str, int]] = {}
        total_seconds = 0.0
        for record in records:
            # One consistent snapshot per record, taken under the record
            # lock — the worker thread cannot advance the state between
            # the reads that build one row of the aggregate.
            state, timings, cache_hits, execution = record.stats_view()
            by_state[state] = by_state.get(state, 0) + 1
            tenant_states = by_tenant.setdefault(record.spec.tenant, {})
            tenant_states[state] = tenant_states.get(state, 0) + 1
            if execution is not None:
                mode = execution.get("mode", "unknown")
                evaluate_modes[mode] = evaluate_modes.get(mode, 0) + 1
            for stage, seconds in timings.items():
                stage_seconds.setdefault(stage, []).append(seconds)
                if stage != "total":
                    total_seconds += seconds
            for stage, hit in cache_hits.items():
                table = stage_hits if hit else stage_misses
                table[stage] = table.get(stage, 0) + 1
        uptime = time.time() - self.started_at
        done = by_state.get("done", 0)
        depths = self._queue.depths()
        running = self._queue.running()
        pool_stats = (
            self.worker_pool.stats().as_dict()
            if self.worker_pool is not None
            else None
        )
        return {
            "pool": pool_stats,
            "jobs": {
                "submitted": len(records),
                "by_state": by_state,
                "degraded": sum(1 for r in records if r.degraded),
            },
            "cache": {
                "stage_hits": stage_hits,
                "stage_misses": stage_misses,
            },
            "evaluate_modes": evaluate_modes,
            "stage_seconds_mean": {
                stage: sum(values) / len(values)
                for stage, values in stage_seconds.items()
            },
            "uptime_seconds": uptime,
            "jobs_per_second": done / uptime if uptime > 0 else 0.0,
            "busy_seconds": total_seconds,
            "workers": self.num_workers,
            "owner": self.owner_id,
            "tenants": {
                tenant: {
                    "by_state": states,
                    "queued_depth": depths.get(tenant, 0),
                    "running": running.get(tenant, 0),
                    "policy": self.tenants.policy(tenant).to_dict(),
                }
                for tenant, states in sorted(by_tenant.items())
            },
            "store": self.store.as_dict(),
        }

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            popped = self._queue.pop()
            if popped is None:
                return  # queue closed: shutdown
            tenant, job_id = popped
            try:
                self._run_claimed(job_id)
            finally:
                self._queue.task_done(tenant)

    def _run_claimed(self, job_id: str) -> None:
        try:
            record = self.get(job_id)
        except KeyError:  # pragma: no cover - defensive
            return
        if record.state != "queued":
            return  # cancelled while queued, or claimed+started by a peer
        if self.journal is not None and not self.journal.claim(
            job_id, self.owner_id
        ):
            return  # a peer scheduler owns this job
        record.update(started_at=time.time(), owner=self.owner_id)
        tracer = trace.start(
            "job",
            {
                "job_id": job_id,
                "query": record.spec.query,
                "tenant": record.spec.tenant,
            },
        )
        requeued = False
        try:
            with tracer as root:
                use_pool = True
                pool = self.worker_pool
                if (
                    pool is not None
                    and self.degrade
                    and getattr(pool, "broken", False)
                ):
                    # The pool is known-unrecoverable: go straight to
                    # serial evaluation instead of paying one doomed
                    # dispatch per job.
                    use_pool = False
                    record.update(degraded=True)
                    _DEGRADED_MODE.set(1)
                try:
                    self._execute(record, use_pool=use_pool)
                except PoolUnrecoverableError:
                    if not self.degrade or pool is None or not use_pool:
                        raise
                    # Graceful degradation: the stage checkpoints
                    # already in the store turn the serial re-run into
                    # a resume of whatever had completed.
                    record.update(degraded=True)
                    _DEGRADED_MODE.set(1)
                    with trace.span("job.degrade"):
                        self._execute(record, use_pool=False)
        except Exception as error:  # noqa: BLE001 - job isolation
            if self._shutdown and not record.done:
                # Shutdown tore a shared resource (worker pool, store)
                # from under this in-flight job: requeue it for the
                # next scheduler instead of failing it.
                requeued = True
                record.update(state="queued", owner=None, started_at=None)
                if self.journal is not None:
                    try:
                        self.journal.release_claim(job_id, self.owner_id)
                        self.journal.append(
                            "state", job_id, state="queued",
                            owner=self.owner_id, resumed=True,
                        )
                    except OSError:  # pragma: no cover - torn teardown
                        pass
            else:
                record.update(
                    state="failed",
                    error=f"{type(error).__name__}: {error}",
                )
        finally:
            if requeued:
                for kind, key in record.pins:
                    self.store.unpin(kind, key)
                record.pins = []
                return
            if not record.done:  # pragma: no cover - defensive
                record.update(
                    state="failed",
                    error=record.error or "worker exited mid-job",
                )
            record.update(finished_at=time.time())
            record.set_timing(
                "total", record.finished_at - record.started_at
            )
            _JOBS.inc(state=record.state, tenant=record.spec.tenant)
            document = root.to_dict()
            record.update(trace=document)
            try:
                self.store.put_trace(job_id, document)
            except Exception:  # pragma: no cover - store teardown
                pass
            for kind, key in record.pins:
                self.store.unpin(kind, key)
            record.pins = []
            _, timings, cache_hits, _ = record.stats_view()
            self._journal_state(
                record, terminal=True, error=record.error,
                timings=timings, cache_hits=cache_hits,
            )
            if self.journal is not None:
                try:
                    self.store.put_job_document(
                        job_id, record.as_dict(include_result=True)
                    )
                except Exception:  # pragma: no cover - store teardown
                    pass
            record.mark_settled()

    def _pin(self, record: JobRecord, kind: str, key: str) -> None:
        """Pin a store artifact for the lifetime of this job."""
        self.store.pin(kind, key)
        with record._lock:
            record.pins.append((kind, key))

    def _run_stage(self, record: JobRecord, stage: str, body: Callable):
        """Run one stage body under the staged-retry policy.

        Transient faults (see :func:`repro.faults.is_transient`) are
        retried up to ``max_retries`` times with exponential backoff and
        jitter; the attempts consumed are recorded on the job.  Permanent
        faults — including :class:`PoolUnrecoverableError`, whose remedy
        is degradation — propagate immediately.
        """
        attempt = 0
        while True:
            attempt += 1
            with record._lock:
                record.attempts[stage] = max(
                    attempt, record.attempts.get(stage, 0)
                )
            try:
                return body()
            except Exception as error:  # noqa: BLE001 - taxonomy below
                if (
                    attempt > self.max_retries
                    or not is_transient(error)
                    or self._shutdown
                ):
                    raise
                _STAGE_RETRIES.inc(stage=stage)
                delay = min(2.0, self.retry_backoff * (2 ** (attempt - 1)))
                time.sleep(delay * (0.5 + self._retry_rng.random()))

    def _cancelled(self, record: JobRecord) -> bool:
        with record._lock:
            if record.cancel_requested:
                record.state = "cancelled"
                record._cond.notify_all()
                return True
        return False

    def _execute(self, record: JobRecord, use_pool: bool = True) -> None:
        spec = record.spec
        if spec.query == "variational":
            self._execute_variational(record, use_pool=use_pool)
            return
        circuit = spec.build_circuit()
        device = None
        if spec.device is not None:
            from ..devices import get_device

            device = get_device(spec.device, seed=spec.seed)
        pipeline = CutQC(
            circuit,
            max_subcircuit_qubits=spec.device_size,
            max_subcircuits=spec.max_subcircuits,
            max_cuts=spec.max_cuts,
            method=spec.method,
            device=device,
            device_shots=spec.shots,
            trajectories=spec.trajectories,
            noisy_method=spec.noisy_method,
            workers=spec.workers,
            strategy=spec.strategy,
            seed=spec.seed,
            worker_pool=self.worker_pool if use_pool else None,
            sim_batch=spec.sim_batch,
            fusion_width=spec.fusion_width,
        )

        # -- stage 1: cut (checkpointed) --------------------------------
        if self._cancelled(record):
            return
        self._advance(record, "cutting")
        began = time.perf_counter()

        def cut_stage() -> None:
            cut_key = pipeline.cut_fingerprint()
            record.set_fingerprint("cut", cut_key)
            self._pin(record, "cut", cut_key)
            restored = self.store.get_cut(cut_key, circuit)
            if restored is not None:
                pipeline.load_cut(*restored)
                record.set_cache_hit("cut", True)
            else:
                cut = pipeline.cut()
                self.store.put_cut(cut_key, circuit, cut, pipeline.solution)
                record.set_cache_hit("cut", False)

        with trace.span("job.cut"):
            self._run_stage(record, "cut", cut_stage)
        record.set_timing("cut", time.perf_counter() - began)

        # -- stage 2: evaluate (checkpointed) ---------------------------
        if self._cancelled(record):
            return
        self._advance(record, "evaluating")
        began = time.perf_counter()

        def evaluate_stage() -> None:
            # shots/seed only shape the tensors when a sampling backend is
            # configured; for the deterministic statevector backend they
            # are inert and would only fragment the warm cache.
            sampling = spec.device is not None
            config = None
            if sampling and spec.batched:
                # Trajectory count shapes the estimated distributions on
                # the batched noisy path; fold it into the artifact
                # identity.
                config = {"trajectories": spec.trajectories}
            evaluation_key = pipeline.evaluation_fingerprint(
                backend=spec.backend_tag(),
                shots=spec.shots if sampling else None,
                seed=spec.seed if sampling else None,
                config=config,
            )
            record.set_fingerprint("evaluate", evaluation_key)
            self._pin(record, "evaluation", evaluation_key)
            results = self.store.get_evaluation(
                evaluation_key, pipeline.cut()
            )
            if results is not None:
                pipeline.load_results(results)
                record.set_cache_hit("evaluate", True)
            else:
                results = pipeline.evaluate()
                self.store.put_evaluation(evaluation_key, results)
                record.set_cache_hit("evaluate", False)
                report = pipeline.execution_report
                if report is not None:
                    record.update(execution={
                        "mode": report.mode,
                        "num_variants": report.num_variants,
                        "num_unique_circuits": report.num_unique_circuits,
                        "dedup_ratio": report.dedup_ratio,
                        "num_body_passes": report.num_body_passes,
                        "sim_batch": report.sim_batch,
                    })

        with trace.span("job.evaluate"):
            self._run_stage(record, "evaluate", evaluate_stage)
        record.set_timing("evaluate", time.perf_counter() - began)

        # -- stage 3: query ---------------------------------------------
        if self._cancelled(record):
            return
        self._advance(record, "querying")
        began = time.perf_counter()
        with trace.span("job.query", {"mode": spec.query}):
            result = self._run_stage(
                record, "query", lambda: self._run_query(pipeline, spec)
            )
        record.set_timing("query", time.perf_counter() - began)
        record.update(result=result, state="done")

    def _execute_variational(
        self, record: JobRecord, use_pool: bool = True
    ) -> None:
        """Server-side SPSA MaxCut loop over one warm
        :class:`~repro.core.variational.VariationalSession`.

        The cut is obtained once (store-checkpointed under the
        parameter-invariant fingerprint); every optimizer iteration then
        *rebinds* the two SPSA probe points instead of re-running the
        pipeline, re-evaluating only subcircuits whose angles moved.  One
        entry per iteration is appended to ``record.iterations`` as it
        completes, so pollers watch the cost trace live.
        """
        import numpy as np

        from ..core.variational import VariationalSession, spsa_gains
        from ..library.qaoa import maxcut_cost, qaoa_maxcut

        spec = record.spec
        num_qubits = spec.qubits
        edges = spec.qaoa_edges()

        def flat(theta):
            # Expand per-layer (gamma, beta) to the flat per-gate vector
            # through the generator itself, so the layout always matches.
            return qaoa_maxcut(
                num_qubits, edges, layers=spec.layers, parameters=list(theta)
            ).parameters()

        rng = np.random.default_rng(spec.seed)
        theta = rng.uniform(0.1, np.pi - 0.1, size=2 * spec.layers)

        if self._cancelled(record):
            return
        self._advance(record, "cutting")
        device = None
        if spec.device is not None:
            from ..devices import get_device

            device = get_device(spec.device, seed=spec.seed)
        session = VariationalSession(
            spec.build_circuit(),
            max_subcircuit_qubits=spec.device_size,
            store=self.store,
            max_subcircuits=spec.max_subcircuits,
            max_cuts=spec.max_cuts,
            method=spec.method,
            device=device,
            device_shots=spec.shots,
            trajectories=spec.trajectories,
            noisy_method=spec.noisy_method,
            workers=spec.workers,
            strategy=spec.strategy,
            seed=spec.seed,
            worker_pool=self.worker_pool if use_pool else None,
            sim_batch=spec.sim_batch,
            fusion_width=spec.fusion_width,
        )
        record.set_fingerprint("cut", session.cut_fingerprint())
        self._pin(record, "cut", session.cut_fingerprint())

        # Warm-up: first rebind cuts (or restores) and evaluates all.
        self._advance(record, "evaluating")
        with trace.span("job.evaluate"):
            warmup = self._run_stage(
                record, "evaluate", lambda: session.rebind(flat(theta))
            )
        record.set_cache_hit("cut", bool(session.cut_store_hit))
        record.set_timing("cut", warmup.cut_seconds)
        record.set_timing(
            "evaluate", warmup.evaluate_seconds + warmup.tensor_seconds
        )
        record.update(execution={"mode": warmup.execution_mode})
        cost = maxcut_cost(session.probabilities(), edges, num_qubits)
        initial_cost = best_cost = cost
        best_theta = theta.copy()

        self._advance(record, "querying")
        loop_span = trace.span(
            "job.query", {"mode": "variational", "iterations": spec.iterations}
        )
        loop_began = time.perf_counter()
        with loop_span:
            for k in range(spec.iterations):
                if self._cancelled(record):
                    return
                began = time.perf_counter()
                a_k, c_k = spsa_gains(k)
                delta = rng.choice((-1.0, 1.0), size=theta.size)
                stats_plus = session.rebind(flat(theta + c_k * delta))
                cost_plus = maxcut_cost(
                    session.probabilities(), edges, num_qubits
                )
                stats_minus = session.rebind(flat(theta - c_k * delta))
                cost_minus = maxcut_cost(
                    session.probabilities(), edges, num_qubits
                )
                if cost_plus > best_cost:
                    best_cost = cost_plus
                    best_theta = theta + c_k * delta
                if cost_minus > best_cost:
                    best_cost = cost_minus
                    best_theta = theta - c_k * delta
                # Maximize <C>: ascend the simultaneous-perturbation
                # gradient estimate (1/delta == delta for Rademacher
                # perturbations).
                theta = (
                    theta
                    + a_k * (cost_plus - cost_minus) / (2 * c_k) * delta
                )
                record.append_iteration({
                    "iteration": k,
                    "cost_plus": cost_plus,
                    "cost_minus": cost_minus,
                    "best_cost": best_cost,
                    "theta": [float(t) for t in theta],
                    "seconds": time.perf_counter() - began,
                    "reuse": {
                        "cut_cache_hits": sum(
                            1
                            for s in (stats_plus, stats_minus)
                            if s.cut_cache_hit
                        ),
                        "subcircuit_evaluations": (
                            len(stats_plus.dirty_subcircuits)
                            + len(stats_minus.dirty_subcircuits)
                        ),
                        "tensors_reused": (
                            stats_plus.tensors_reused
                            + stats_minus.tensors_reused
                        ),
                        "fusion_blocks_built": (
                            stats_plus.fusion_blocks_built
                            + stats_minus.fusion_blocks_built
                        ),
                        "fusion_blocks_reused": (
                            stats_plus.fusion_blocks_reused
                            + stats_minus.fusion_blocks_reused
                        ),
                    },
                })
        record.set_timing("query", time.perf_counter() - loop_began)
        record.update(result={
            "mode": "variational",
            "num_qubits": num_qubits,
            "num_cuts": session.cut.num_cuts,
            "num_subcircuits": session.cut.num_subcircuits,
            "num_edges": len(edges),
            "layers": spec.layers,
            "iterations": spec.iterations,
            "initial_cost": initial_cost,
            "best_cost": best_cost,
            "best_theta": [float(t) for t in best_theta],
            "final_theta": [float(t) for t in theta],
            "session": session.summary(),
        }, state="done")

    def _run_query(self, pipeline: CutQC, spec: JobSpec) -> Dict:
        num_qubits = pipeline.circuit.num_qubits
        base = {
            "num_qubits": num_qubits,
            "num_cuts": pipeline.cut().num_cuts,
            "num_subcircuits": pipeline.cut().num_subcircuits,
        }
        if spec.query == "fd":
            from ..utils import top_states

            result = pipeline.fd_query()
            stats = result.stats
            return {
                **base,
                "mode": "fd",
                "strategy": stats.strategy,
                "num_terms": stats.num_terms,
                "num_skipped": stats.num_skipped,
                "elapsed_seconds": stats.elapsed_seconds,
                "top_states": [
                    {"state": bits, "probability": probability}
                    for bits, probability in top_states(
                        result.probabilities, spec.top, num_qubits
                    )
                ],
            }
        if spec.query == "dd":
            query = pipeline.dd_query(
                max_active_qubits=spec.active,
                max_recursions=spec.recursions,
                zoom_width=spec.zoom_width,
            )
            states = query.solution_states(threshold=spec.threshold)
            return {
                **base,
                "mode": "dd",
                "stats": query.stats().as_dict(),
                "solution_states": [
                    {"state": bits, "probability": probability}
                    for bits, probability in states[: spec.top]
                ],
            }
        # top_k: streamed, bounded-memory
        shard_qubits = spec.shard_qubits
        if shard_qubits is None:
            shard_qubits = max(1, min(num_qubits - 1, num_qubits // 2))
        if not 0 <= shard_qubits <= num_qubits:
            raise ValueError(
                f"shard_qubits must be in [0, {num_qubits}]"
            )
        states = pipeline.fd_top_k(shard_qubits, spec.top)
        stream_stats = pipeline.stream_stats
        return {
            **base,
            "mode": "top_k",
            "shard_qubits": shard_qubits,
            "stream": stream_stats.as_dict() if stream_stats else None,
            "top_states": [
                {"state": bits, "probability": probability}
                for bits, probability in states
            ],
        }
