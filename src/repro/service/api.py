"""JSON API surface of the job service, independent of transport.

:class:`JobServiceAPI` maps request payloads (plain dicts) onto the
scheduler and back — the HTTP server, the CLI client and in-process
tests all speak through this one layer, so the protocol is defined once.

Request shape for job creation (``POST /jobs``)::

    {
      "circuit": {"benchmark": "bv", "qubits": 11, "seed": 0},   # by name
      # or      {"qasm": "OPENQASM 2.0; ..."}                    # inline
      "device_size": 5,
      "query": {"type": "fd", "top": 5},        # or "dd" / "top_k" params
      "method": "auto", "strategy": "auto", "workers": 1, ...
    }

``circuit`` and ``query`` may also be given flat (``benchmark=...``,
``query="fd"``); the nested form is sugar.  Errors raise
:class:`ApiError` carrying the HTTP status the transport should emit.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..obs.metrics import get_registry
from .scheduler import JobScheduler, JobSpec
from .tenancy import QuotaExceededError

__all__ = ["ApiError", "JobServiceAPI"]

_OVERLOAD_REJECTIONS = get_registry().counter(
    "repro_overload_rejections_total",
    "Submissions rejected at the front door because the scheduler's "
    "accept queue exceeded max_pending.",
)


class ApiError(Exception):
    """A client-visible error with an HTTP status code.

    ``payload`` carries extra machine-readable fields merged into the
    JSON error body (e.g. the typed quota-rejection document).
    """

    def __init__(
        self, status: int, message: str, payload: Optional[Dict] = None
    ):
        super().__init__(message)
        self.status = int(status)
        self.message = message
        self.payload = dict(payload or {})

    def as_dict(self) -> Dict:
        return {"error": self.message, "status": self.status, **self.payload}


def _flatten_payload(payload: Dict) -> Dict:
    """Fold the nested ``circuit`` / ``query`` sugar into JobSpec fields."""
    if not isinstance(payload, dict):
        raise ApiError(400, "job payload must be a JSON object")
    flat = dict(payload)
    circuit = flat.pop("circuit", None)
    if circuit is not None:
        if not isinstance(circuit, dict):
            raise ApiError(400, "circuit must be an object")
        flat.update(circuit)
    query = flat.pop("query", None)
    if isinstance(query, dict):
        query = dict(query)
        flat["query"] = query.pop("type", "fd")
        flat.update(query)
    elif query is not None:
        flat["query"] = query
    return flat


class JobServiceAPI:
    """Dict-in / dict-out handlers over one :class:`JobScheduler`.

    ``max_pending`` bounds the scheduler's accept queue: submissions
    arriving while that many jobs are already waiting are rejected with
    a typed 503 (code ``overloaded``), mirroring the 429 quota shape —
    backpressure instead of unbounded queue growth under overload.
    """

    def __init__(
        self, scheduler: JobScheduler, max_pending: Optional[int] = None
    ):
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be positive (or None)")
        self.scheduler = scheduler
        self.max_pending = max_pending

    # ------------------------------------------------------------------
    def create_job(self, payload: Dict) -> Dict:
        if self.max_pending is not None:
            pending = self.scheduler.queue_depth()
            if pending >= self.max_pending:
                _OVERLOAD_REJECTIONS.inc()
                raise ApiError(
                    503,
                    f"service overloaded: {pending} jobs already pending "
                    f"(max_pending={self.max_pending})",
                    payload={
                        "code": "overloaded",
                        "limit": self.max_pending,
                        "pending": pending,
                    },
                )
        try:
            spec = JobSpec.from_dict(_flatten_payload(payload))
            job_id = self.scheduler.submit(spec)
        except ApiError:
            raise
        except QuotaExceededError as error:
            # Typed admission rejection: 429 + code "quota_exceeded".
            raise ApiError(
                429, str(error), payload=error.as_dict()
            ) from None
        except (TypeError, ValueError) as error:
            raise ApiError(400, str(error)) from None
        record = self.scheduler.get(job_id)
        return {"job_id": job_id, "state": record.state}

    def _record(self, job_id: str):
        try:
            return self.scheduler.get(job_id)
        except KeyError:
            raise ApiError(404, f"unknown job {job_id!r}") from None

    def job_status(self, job_id: str) -> Dict:
        return self._record(job_id).as_dict()

    def job_result(self, job_id: str) -> Dict:
        record = self._record(job_id)
        # Jobs executed by a peer server (or a previous process) carry
        # their result in the store, not in this scheduler's memory.
        self.scheduler.load_persisted(record)
        if record.state == "failed":
            raise ApiError(500, f"job failed: {record.error}")
        if record.state == "cancelled":
            raise ApiError(410, "job was cancelled")
        if record.state != "done":
            raise ApiError(
                409, f"job is {record.state!r}; result not ready"
            )
        document = record.as_dict(include_result=True)
        return document

    def cancel_job(self, job_id: str) -> Dict:
        record = self._record(job_id)
        accepted = self.scheduler.cancel(job_id)
        return {
            "job_id": job_id,
            "cancelled": accepted,
            "state": record.state,
        }

    def job_trace(self, job_id: str) -> Dict:
        """The job's span tree (in-memory first, store fallback)."""
        record = self._record(job_id)
        document = record.trace
        if document is None:
            document = self.scheduler.store.get_trace(job_id)
        if document is None:
            raise ApiError(
                409, f"job is {record.state!r}; trace not ready"
            )
        return {"job_id": job_id, "trace": document}

    def list_jobs(self) -> Dict:
        return {
            "jobs": [
                record.as_dict() for record in self.scheduler.records()
            ]
        }

    def stats(self) -> Dict:
        return self.scheduler.stats()

    def metrics(self) -> str:
        """The process-wide registry in Prometheus text format."""
        return get_registry().render()
