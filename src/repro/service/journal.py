"""Durable job journal: append-only log + file-lock-guarded claims.

The journal is the persistence and coordination substrate of the job
service.  It lives inside the :class:`~repro.service.store.ArtifactStore`
root (``<store>/jobs/``)::

    jobs/journal.jsonl    append-only event log (one JSON object per line)
    jobs/claims/<job_id>  existence = some scheduler owns the job
    jobs/claims.lock      serializes stale-claim stealing across processes

Three event types flow through the log:

* ``submit`` — a new job: id, tenant and the full ``JobSpec`` document.
* ``state``  — a state transition, stamped with the owning scheduler;
  terminal events also carry timings/cache hits so peer servers can
  answer status queries without touching the executor.
* ``cancel`` — a cancellation request (any server may record it; the
  owning scheduler honors it at its next stage boundary).

Appends take an exclusive ``flock`` on the log so concurrent writers
(N servers, one store dir) never interleave partial lines; readers tail
from their last byte offset, parsing only complete lines.  Writes are
flushed but not fsynced by default — the journal survives process kills
(the acceptance test SIGKILLs a scheduler mid-stage), while full
power-loss durability costs one ``fsync=True`` flag.

**Claims** make execution exclusive: before running a job a worker
atomically creates ``claims/<job_id>`` (``O_CREAT | O_EXCL``) holding
its owner id and pid.  Creation succeeds exactly once, so of N
schedulers tailing the same journal only one executes each job.  A
claim whose pid no longer exists is *stale* — a restarted scheduler
steals it (under ``claims.lock``) and resumes the job from its last
checkpointed stage.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

try:  # pragma: no cover - always available on the POSIX CI targets
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from .. import chaos
from ..obs.metrics import get_registry

__all__ = ["JobJournal"]

_TORN_LINES = get_registry().counter(
    "repro_journal_torn_lines_total",
    "Corrupted or torn journal lines skipped during replay/tailing.",
)


def _flock(stream, exclusive: bool) -> None:
    if fcntl is not None:
        mode = fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH
        fcntl.flock(stream.fileno(), mode)


def _funlock(stream) -> None:
    if fcntl is not None:
        fcntl.flock(stream.fileno(), fcntl.LOCK_UN)


def pid_alive(pid: Optional[int]) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe)."""
    if not pid:
        return False
    try:
        os.kill(int(pid), 0)
    except (ProcessLookupError, ValueError):
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    except OSError:  # pragma: no cover - defensive
        return False
    return True


class JobJournal:
    """Append-only event log plus claim files under one directory."""

    def __init__(self, root, fsync: bool = False):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / "journal.jsonl"
        self.claims_dir = self.root / "claims"
        self.claims_dir.mkdir(parents=True, exist_ok=True)
        self.path.touch(exist_ok=True)
        self._steal_lock_path = self.root / "claims.lock"
        self._fsync = bool(fsync)
        self._lock = threading.Lock()
        self._offset = 0

    # -- log ------------------------------------------------------------
    def append(self, event_type: str, job_id: str, **fields) -> Dict:
        """Append one event; returns the record as written."""
        chaos.on_journal_append()
        record = {"type": event_type, "job_id": job_id, "ts": time.time()}
        record.update(fields)
        data = (json.dumps(record, separators=(",", ":")) + "\n").encode()
        with self._lock:
            with open(self.path, "ab") as stream:
                _flock(stream, exclusive=True)
                try:
                    stream.write(data)
                    stream.flush()
                    if self._fsync:
                        os.fsync(stream.fileno())
                finally:
                    _funlock(stream)
        return record

    def read_new(self) -> List[Dict]:
        """Events appended (by anyone) since the last read.

        Only complete, newline-terminated lines are consumed; a line
        another process is mid-append stays in the file for next time.
        """
        with self._lock:
            try:
                with open(self.path, "rb") as stream:
                    _flock(stream, exclusive=False)
                    try:
                        stream.seek(self._offset)
                        data = stream.read()
                    finally:
                        _funlock(stream)
            except OSError:
                return []
            records: List[Dict] = []
            consumed = 0
            for line in data.split(b"\n")[:-1]:
                consumed += len(line) + 1
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    # JSONDecodeError and UnicodeDecodeError both subclass
                    # ValueError; torn lines can be invalid UTF-8, not
                    # just invalid JSON.
                    # Tolerate a torn/garbage line anywhere in the log
                    # (tail *or* middle): skip it, count it, keep
                    # consuming the records after it.
                    _TORN_LINES.inc()
                    continue
                if isinstance(record, dict):
                    records.append(record)
            self._offset += consumed
        return records

    def rewind(self) -> None:
        """Reset the tail offset so the next read replays from the top."""
        with self._lock:
            self._offset = 0

    # -- claims ---------------------------------------------------------
    def claim_path(self, job_id: str) -> Path:
        return self.claims_dir / job_id

    def claim(self, job_id: str, owner: str) -> bool:
        """Atomically claim ``job_id`` for ``owner``.

        True iff the claim was created now or is already held by this
        very owner (idempotent re-entry after a steal).
        """
        payload = json.dumps(
            {"owner": owner, "pid": os.getpid(), "ts": time.time()}
        )
        try:
            handle = os.open(
                self.claim_path(job_id),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            info = self.claim_info(job_id)
            return bool(info and info.get("owner") == owner)
        with os.fdopen(handle, "w") as stream:
            stream.write(payload)
        return True

    def claim_info(self, job_id: str) -> Optional[Dict]:
        """The claim document, or ``None`` if the job is unclaimed."""
        try:
            return json.loads(self.claim_path(job_id).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def claim_is_stale(self, info: Optional[Dict]) -> bool:
        """A claim is stale when its holder's pid is gone."""
        if info is None:
            return False
        return not pid_alive(info.get("pid"))

    def steal_claim(self, job_id: str, owner: str) -> bool:
        """Take over an unclaimed or stale claim (restart recovery).

        Serialized across processes through ``claims.lock`` so two
        recovering schedulers cannot both adopt one orphaned job.
        Returns True iff ``owner`` now holds the claim.
        """
        with open(self._steal_lock_path, "ab") as guard:
            _flock(guard, exclusive=True)
            try:
                info = self.claim_info(job_id)
                if info is not None:
                    if info.get("owner") == owner:
                        return True
                    if not self.claim_is_stale(info):
                        return False
                payload = json.dumps(
                    {"owner": owner, "pid": os.getpid(), "ts": time.time()}
                )
                path = self.claim_path(job_id)
                temp = path.with_suffix(".steal")
                temp.write_text(payload)
                os.replace(temp, path)
                return True
            finally:
                _funlock(guard)

    def release_claim(self, job_id: str, owner: str) -> None:
        """Drop a claim we hold (used when a claimed job is requeued)."""
        info = self.claim_info(job_id)
        if info is not None and info.get("owner") == owner:
            try:
                self.claim_path(job_id).unlink()
            except OSError:
                pass
