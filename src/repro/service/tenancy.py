"""Multi-tenant admission control and weighted-fair scheduling.

Every :class:`~repro.service.scheduler.JobSpec` names a *tenant* (the
default tenant is ``"default"``).  The scheduler consults a
:class:`TenantConfig` at two points:

* **admission** — :meth:`TenantConfig.admit` rejects a submission with a
  typed :class:`QuotaExceededError` when the tenant is disabled
  (``weight == 0`` or ``max_queued == 0``) or its backlog already holds
  ``max_queued`` jobs.  The HTTP layer maps the error onto a ``429``
  response with a machine-readable body (``code: "quota_exceeded"``).
* **dispatch** — the :class:`FairQueue` replaces the plain FIFO between
  ``submit()`` and the worker threads.  It implements *stride
  scheduling*: each tenant accumulates virtual time at rate
  ``1 / weight`` per dispatched job, and the queue always dispatches
  the backlogged tenant with the smallest virtual time.  A tenant with
  weight 3 therefore receives ~3x the dispatch slots of a weight-1
  tenant while both are backlogged, and a flooding tenant can never
  starve the others — their virtual time stays behind the flooder's.
  ``max_concurrent`` caps in-flight jobs per tenant: a tenant at its
  cap is simply ineligible until :meth:`FairQueue.task_done` releases
  a slot, and other tenants' jobs flow past it.

The queue is process-local; cross-server fairness emerges because every
server runs the same policy over the same journal-replicated backlog.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Optional, Tuple

__all__ = [
    "DEFAULT_TENANT",
    "FairQueue",
    "QuotaExceededError",
    "TenantConfig",
    "TenantPolicy",
]

DEFAULT_TENANT = "default"


class QuotaExceededError(RuntimeError):
    """A submission rejected by per-tenant admission control.

    Carries everything the HTTP layer needs for a typed ``429`` body.
    """

    def __init__(
        self,
        tenant: str,
        reason: str,
        limit: Optional[int] = None,
        queued: Optional[int] = None,
    ):
        self.tenant = tenant
        self.reason = reason
        self.limit = limit
        self.queued = queued
        detail = f"tenant {tenant!r} rejected: {reason}"
        if limit is not None:
            detail += f" (limit {limit}"
            if queued is not None:
                detail += f", queued {queued}"
            detail += ")"
        super().__init__(detail)

    def as_dict(self) -> Dict:
        return {
            "code": "quota_exceeded",
            "tenant": self.tenant,
            "reason": self.reason,
            "limit": self.limit,
            "queued": self.queued,
        }


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's scheduling weight and admission quotas.

    ``weight`` is the relative dispatch share (stride scheduling);
    ``0`` disables the tenant entirely.  ``max_queued`` bounds the
    backlog (``0`` likewise rejects every submission); ``max_concurrent``
    bounds in-flight jobs.  ``None`` means unlimited.
    """

    weight: float = 1.0
    max_queued: Optional[int] = None
    max_concurrent: Optional[int] = None

    def validate(self) -> None:
        if self.weight < 0:
            raise ValueError("tenant weight must be >= 0")
        if self.max_queued is not None and self.max_queued < 0:
            raise ValueError("max_queued must be >= 0")
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")

    def to_dict(self) -> Dict:
        return {
            "weight": self.weight,
            "max_queued": self.max_queued,
            "max_concurrent": self.max_concurrent,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "TenantPolicy":
        policy = cls(
            weight=float(payload.get("weight", 1.0)),
            max_queued=(
                None
                if payload.get("max_queued") is None
                else int(payload["max_queued"])
            ),
            max_concurrent=(
                None
                if payload.get("max_concurrent") is None
                else int(payload["max_concurrent"])
            ),
        )
        policy.validate()
        return policy


class TenantConfig:
    """Named tenant policies plus the default applied to everyone else."""

    def __init__(
        self,
        policies: Optional[Dict[str, TenantPolicy]] = None,
        default: Optional[TenantPolicy] = None,
    ):
        self.default = default or TenantPolicy()
        self.default.validate()
        self.policies: Dict[str, TenantPolicy] = {}
        for name, policy in (policies or {}).items():
            if isinstance(policy, dict):
                policy = TenantPolicy.from_dict(policy)
            policy.validate()
            self.policies[str(name)] = policy

    def policy(self, tenant: str) -> TenantPolicy:
        return self.policies.get(tenant, self.default)

    def names(self) -> Tuple[str, ...]:
        return tuple(self.policies)

    def admit(self, tenant: str, queued: int) -> None:
        """Raise :class:`QuotaExceededError` if a submission must be
        rejected given the tenant's current backlog depth."""
        policy = self.policy(tenant)
        if policy.weight <= 0:
            raise QuotaExceededError(tenant, "disabled")
        if policy.max_queued is not None and queued >= policy.max_queued:
            raise QuotaExceededError(
                tenant, "max_queued",
                limit=policy.max_queued, queued=queued,
            )

    def to_dict(self) -> Dict:
        return {
            "default": self.default.to_dict(),
            "policies": {
                name: policy.to_dict()
                for name, policy in self.policies.items()
            },
        }

    @classmethod
    def coerce(cls, value) -> "TenantConfig":
        """Accept ``None`` / a config / a ``{name: policy}`` mapping."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls(policies=value)
        raise TypeError(f"cannot build TenantConfig from {type(value)!r}")

    @classmethod
    def parse_specs(cls, specs: Optional[Iterable[str]]) -> "TenantConfig":
        """Build a config from CLI ``--tenant`` strings.

        Each spec is ``name:weight[:max_queued[:max_concurrent]]`` with
        empty fields meaning unlimited, e.g. ``acme:3``, ``free:1:16:2``,
        ``blocked:0``.
        """
        policies: Dict[str, TenantPolicy] = {}
        for spec in specs or ():
            parts = str(spec).split(":")
            if not parts[0]:
                raise ValueError(f"tenant spec {spec!r} has no name")
            if len(parts) > 4:
                raise ValueError(
                    f"tenant spec {spec!r}: expected "
                    "name:weight[:max_queued[:max_concurrent]]"
                )

            def _field(index: int) -> Optional[str]:
                if index < len(parts) and parts[index] != "":
                    return parts[index]
                return None

            weight = _field(1)
            max_queued = _field(2)
            max_concurrent = _field(3)
            policies[parts[0]] = TenantPolicy(
                weight=float(weight) if weight is not None else 1.0,
                max_queued=int(max_queued) if max_queued is not None else None,
                max_concurrent=(
                    int(max_concurrent) if max_concurrent is not None else None
                ),
            )
        return cls(policies=policies)


class FairQueue:
    """Weighted-fair, quota-aware multi-tenant job queue.

    Stride scheduling over per-tenant FIFOs: :meth:`pop` dispatches the
    eligible backlogged tenant with the smallest virtual time, then
    advances that tenant's virtual time by ``1 / weight``.  Tenants
    (re)activating after idling join at the current dispatch clock, so
    an idle tenant cannot bank credit and then monopolize the workers.
    """

    def __init__(self, config: Optional[TenantConfig] = None):
        self.config = config or TenantConfig()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queues: Dict[str, Deque[str]] = {}
        self._passes: Dict[str, float] = {}
        self._running: Dict[str, int] = {}
        self._clock = 0.0
        self._closed = False

    # ------------------------------------------------------------------
    def push(self, tenant: str, item: str) -> None:
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            backlog = self._queues.setdefault(tenant, deque())
            if not backlog:
                # (Re)activation: join at the current virtual time so
                # idle periods don't accumulate dispatch credit.
                self._passes[tenant] = max(
                    self._passes.get(tenant, 0.0), self._clock
                )
            backlog.append(item)
            self._cond.notify()

    def _eligible(self, tenant: str) -> bool:
        limit = self.config.policy(tenant).max_concurrent
        return limit is None or self._running.get(tenant, 0) < limit

    def pop(
        self, timeout: Optional[float] = None
    ) -> Optional[Tuple[str, str]]:
        """Dispatch the next ``(tenant, item)``; blocks while empty.

        Returns ``None`` once the queue is closed (worker shutdown) or
        the timeout expires.  The caller owes a matching
        :meth:`task_done` for every successful pop.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._closed:
                    return None
                best: Optional[str] = None
                best_pass = 0.0
                for tenant, backlog in self._queues.items():
                    if not backlog or not self._eligible(tenant):
                        continue
                    tenant_pass = self._passes.get(tenant, 0.0)
                    if best is None or tenant_pass < best_pass:
                        best, best_pass = tenant, tenant_pass
                if best is not None:
                    item = self._queues[best].popleft()
                    weight = max(self.config.policy(best).weight, 1e-9)
                    self._clock = best_pass
                    self._passes[best] = best_pass + 1.0 / weight
                    self._running[best] = self._running.get(best, 0) + 1
                    return best, item
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)
                else:
                    self._cond.wait()

    def task_done(self, tenant: str) -> None:
        """Release the tenant's concurrency slot taken by :meth:`pop`."""
        with self._cond:
            self._running[tenant] = max(0, self._running.get(tenant, 0) - 1)
            self._cond.notify_all()

    def close(self) -> None:
        """Wake every blocked :meth:`pop` with ``None`` (shutdown)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def depth(self, tenant: str) -> int:
        with self._lock:
            backlog = self._queues.get(tenant)
            return len(backlog) if backlog else 0

    def depths(self) -> Dict[str, int]:
        """Backlog depth per tenant (configured tenants always listed,
        so queue-depth gauges exist even at zero)."""
        with self._lock:
            names = set(self._queues) | set(self.config.names())
            names.add(DEFAULT_TENANT)
            return {
                name: len(self._queues.get(name) or ())
                for name in sorted(names)
            }

    def running(self) -> Dict[str, int]:
        with self._lock:
            return {
                name: count
                for name, count in sorted(self._running.items())
                if count
            }
