"""Job service: serve CutQC queries as jobs with cross-job artifact reuse.

The in-process pipeline recomputes everything on every invocation; this
subsystem turns it into a *serving* system, following the serving-side
reuse lesson of Tangram (warm artifact state dominates end-to-end
latency) applied to CutQC's two expensive stages:

==================  ====================================================
Layer               Responsibility
==================  ====================================================
:mod:`.store`       Content-addressed on-disk artifact store.  Cut
                    solutions are keyed by ``(circuit, cut options)``
                    fingerprints, evaluated subcircuit tensors by
                    ``(cut, backend config, shots, seed)``; artifacts
                    carry checksums and corrupted ones are detected and
                    recomputed, never served.
:mod:`.scheduler`   Async job queue: ``JobSpec``/``JobRecord`` with
                    states queued -> cutting -> evaluating -> querying
                    -> done/failed/cancelled, a thread worker pool,
                    per-stage timing + cache-hit stats, cancellation.
                    Every stage checkpoints through the store, so
                    repeat jobs skip cut search and variant execution
                    and sibling jobs share warm tensors.
:mod:`.journal`     Durable append-only job journal inside the store
                    (``jobs/journal.jsonl``) plus ``O_EXCL`` claim
                    files: restarts replay it and resume interrupted
                    jobs; N servers on one store dir coordinate through
                    it (any accepts, exactly one executes).
:mod:`.tenancy`     Per-tenant admission quotas and the weighted-fair
                    (stride-scheduling) dispatch queue; over-quota
                    submissions raise the typed ``QuotaExceededError``
                    (HTTP 429, ``code: "quota_exceeded"``).
:mod:`.api`         Transport-independent JSON handlers (dict in/out).
:mod:`.server`      Stdlib ``ThreadingHTTPServer`` front-end
                    (``POST /jobs``, ``GET /jobs/<id>[/result]``,
                    ``GET /stats``) plus the JSON client the CLI verbs
                    ``serve`` / ``submit`` / ``status`` / ``jobs`` use.
==================  ====================================================

The pipeline side of the contract lives in
:class:`repro.core.CutQC`: ``cut_fingerprint()`` /
``evaluation_fingerprint()`` name the stages' content, and
``load_cut()`` / ``load_results()`` resume a pipeline from restored
checkpoints.
"""

from .api import ApiError, JobServiceAPI
from .journal import JobJournal
from .scheduler import JOB_STATES, QUERY_TYPES, JobRecord, JobScheduler, JobSpec
from .server import JobServer, ServiceClientError, request_json
from .store import (
    ArtifactStore,
    StoreStats,
    circuit_digest,
    cut_fingerprint,
    evaluation_fingerprint,
)
from .tenancy import (
    FairQueue,
    QuotaExceededError,
    TenantConfig,
    TenantPolicy,
)

__all__ = [
    "ApiError",
    "JobServiceAPI",
    "JOB_STATES",
    "QUERY_TYPES",
    "JobJournal",
    "JobRecord",
    "JobScheduler",
    "JobSpec",
    "JobServer",
    "ServiceClientError",
    "request_json",
    "ArtifactStore",
    "StoreStats",
    "FairQueue",
    "QuotaExceededError",
    "TenantConfig",
    "TenantPolicy",
    "circuit_digest",
    "cut_fingerprint",
    "evaluation_fingerprint",
]
