"""Stdlib HTTP front-end of the job service (plus a tiny JSON client).

Routes (all JSON)::

    POST /jobs               submit a job           -> 202 {job_id, state}
    GET  /jobs               list jobs + states
    GET  /jobs/<id>          job status (stages, timings, cache hits)
    GET  /jobs/<id>/result   query result           -> 409 until done
    GET  /jobs/<id>/trace    span tree of the job   -> 409 until recorded
    POST /jobs/<id>/cancel   request cancellation
    GET  /stats              scheduler + artifact-store statistics
    GET  /metrics            Prometheus text exposition (not JSON)
    GET  /healthz            liveness probe

Built on :class:`http.server.ThreadingHTTPServer` — no third-party web
framework, matching the repo's stdlib-only dependency rule.  Pass
``port=0`` to bind an ephemeral port (tests, CI smoke); the bound port is
available as :attr:`JobServer.port`.
"""

from __future__ import annotations

import json
import re
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from .api import ApiError, JobServiceAPI
from .scheduler import JobScheduler
from .store import ArtifactStore

__all__ = ["JobServer", "request_json", "ServiceClientError"]

_JOB_PATH = re.compile(
    r"^/jobs/(?P<job_id>[\w.\-]+)(?P<tail>/result|/cancel|/trace)?$"
)
_MAX_BODY_BYTES = 8 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto a :class:`JobServiceAPI` instance."""

    api: JobServiceAPI  # injected by JobServer via subclassing
    server_version = "CutQCJobService/1.0"

    # -- plumbing -------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep test/CI output clean; stats live at /stats

    def _send(self, status: int, document: Dict) -> None:
        body = (json.dumps(document, indent=2) + "\n").encode()
        self._send_bytes(status, body, "application/json")

    def _send_bytes(
        self, status: int, body: bytes, content_type: str
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise ApiError(413, "request body too large")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ApiError(400, "request body must be JSON")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise ApiError(400, f"invalid JSON body: {error}") from None

    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0].rstrip("/")
        if method == "GET" and path == "/metrics":
            # Prometheus text exposition, not JSON — separate send path.
            try:
                body = self.api.metrics().encode()
            except Exception as error:  # noqa: BLE001 - never kill serving
                self._send(
                    500,
                    {
                        "error": f"{type(error).__name__}: {error}",
                        "status": 500,
                    },
                )
                return
            self._send_bytes(
                200, body, "text/plain; version=0.0.4; charset=utf-8"
            )
            return
        try:
            status, document = self._route(method)
        except ApiError as error:
            self._send(error.status, error.as_dict())
        except Exception as error:  # noqa: BLE001 - never kill the server
            self._send(
                500, {"error": f"{type(error).__name__}: {error}", "status": 500}
            )
        else:
            self._send(status, document)

    # -- routing --------------------------------------------------------
    def _route(self, method: str) -> Tuple[int, Dict]:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path == "/healthz":
            return 200, {"status": "ok"}
        if method == "GET" and path == "/stats":
            return 200, self.api.stats()
        if path == "/jobs":
            if method == "POST":
                return 202, self.api.create_job(self._read_body())
            if method == "GET":
                return 200, self.api.list_jobs()
            raise ApiError(405, f"{method} not allowed on {path}")
        match = _JOB_PATH.match(path)
        if match:
            job_id, tail = match.group("job_id"), match.group("tail")
            if tail == "/result" and method == "GET":
                return 200, self.api.job_result(job_id)
            if tail == "/trace" and method == "GET":
                return 200, self.api.job_trace(job_id)
            if tail == "/cancel" and method == "POST":
                return 200, self.api.cancel_job(job_id)
            if tail is None and method == "GET":
                return 200, self.api.job_status(job_id)
            raise ApiError(405, f"{method} not allowed on {path}")
        raise ApiError(404, f"no route for {path}")

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")


class JobServer:
    """The assembled service: store + scheduler + threaded HTTP server.

    Each server instance is *stateless* beyond its scheduler's journal
    mirror: N servers constructed over one shared :class:`ArtifactStore`
    (``serve --replicas N``, or a ``store`` passed explicitly, or N
    processes pointed at one ``store_dir``) coordinate through the job
    journal — any replica accepts submissions, exactly one claims and
    executes each job, and every replica can serve its status/result.
    """

    def __init__(
        self,
        store_dir=None,
        host: str = "127.0.0.1",
        port: int = 8000,
        workers: int = 2,
        scheduler: Optional[JobScheduler] = None,
        pool_workers: int = 0,
        store: Optional[ArtifactStore] = None,
        max_store_bytes: Optional[int] = None,
        tenants=None,
        journal: bool = True,
        journal_poll: float = 0.25,
        max_pending: Optional[int] = None,
        max_retries: int = 2,
        degrade: bool = True,
    ):
        if scheduler is not None:
            self.store = scheduler.store
            self.scheduler = scheduler
        else:
            if store is None:
                if store_dir is None:
                    raise ValueError(
                        "JobServer needs store_dir, store or scheduler"
                    )
                store = ArtifactStore(store_dir, max_bytes=max_store_bytes)
            self.store = store
            self.scheduler = JobScheduler(
                self.store,
                workers=workers,
                pool_workers=pool_workers,
                tenants=tenants,
                journal=journal,
                journal_poll=journal_poll,
                max_retries=max_retries,
                degrade=degrade,
            )
        self.api = JobServiceAPI(self.scheduler, max_pending=max_pending)

        api = self.api

        class BoundHandler(_Handler):
            pass

        BoundHandler.api = api
        class BoundServer(ThreadingHTTPServer):
            pass

        if max_pending is not None:
            # Bound the TCP accept backlog too, so overload pushes back
            # at the socket before the typed 503 ever has to.
            BoundServer.request_queue_size = min(
                128, max(8, int(max_pending))
            )
        self.httpd = BoundServer((host, port), BoundHandler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        """The actually bound port (resolves ``port=0`` ephemeral binds)."""
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def start(self) -> "JobServer":
        """Serve in a daemon thread (non-blocking); returns self."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="cutqc-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI ``serve`` verb)."""
        self.httpd.serve_forever()

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.scheduler.shutdown(wait=True)

    def __enter__(self) -> "JobServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Minimal JSON client (CLI verbs, tests)
# ----------------------------------------------------------------------

class ServiceClientError(RuntimeError):
    """An HTTP error from the service, with its status + JSON body."""

    def __init__(self, status: int, document: Dict):
        super().__init__(document.get("error", f"HTTP {status}"))
        self.status = status
        self.document = document


def request_json(
    method: str,
    url: str,
    payload: Optional[Dict] = None,
    timeout: float = 30.0,
) -> Dict:
    """One JSON request/response round-trip against the service."""
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        url, data=data, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as error:
        try:
            document = json.loads(error.read() or b"{}")
        except json.JSONDecodeError:
            document = {"error": str(error)}
        raise ServiceClientError(error.code, document) from None
    except urllib.error.URLError as error:
        # Connection refused / DNS failure / timeout: no HTTP status.
        raise ServiceClientError(
            0, {"error": f"cannot reach {url}: {error.reason}"}
        ) from None
