"""Multiqubit-gate graph used by the cut searcher (paper §4.1.1).

Single-qubit gates do not affect connectivity, so the cut model sees only
multiqubit gates: they become vertices, and each pair of *consecutive*
multiqubit gates on the same wire becomes a directed edge.  Cutting an edge
``(u, v)`` on wire ``q`` means cutting wire ``q`` between gates ``u`` and
``v`` (the paper's timewise cut).

The vertex weight ``w_v`` counts the original circuit input qubits whose
first multiqubit gate is ``v`` — exactly the parameter the MIP uses in
Eq. (4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import networkx as nx

from .circuit import QuantumCircuit

__all__ = ["WireEdge", "CircuitGraph", "build_circuit_graph"]


@dataclass(frozen=True)
class WireEdge:
    """An edge of the cut graph: consecutive multiqubit gates on one wire.

    Attributes
    ----------
    source, target:
        Vertex ids (positions in :attr:`CircuitGraph.vertices`) of the
        upstream and downstream multiqubit gates.
    wire:
        Original circuit qubit the edge lives on.
    wire_index:
        Cutting this edge cuts wire ``wire`` immediately before its
        ``wire_index``-th multiqubit gate (0-based); equals the segment
        boundary used by the cutter.
    """

    source: int
    target: int
    wire: int
    wire_index: int


class CircuitGraph:
    """Cut-model view of a circuit: multiqubit gates + wire edges."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        vertices: List[int],
        edges: List[WireEdge],
        vertex_weights: List[int],
        wire_vertices: Dict[int, List[int]],
    ):
        self.circuit = circuit
        #: circuit gate positions of the multiqubit gates, in circuit order
        self.vertices = vertices
        self.edges = edges
        #: w_v of Eq. (4): original inputs whose first multiqubit gate is v
        self.vertex_weights = vertex_weights
        #: wire -> vertex ids of the multiqubit gates on that wire, in order
        self.wire_vertices = wire_vertices

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def edge_for_cut(self, wire: int, wire_index: int) -> WireEdge:
        """The edge cut by splitting ``wire`` before its ``wire_index``-th gate."""
        for edge in self.edges:
            if edge.wire == wire and edge.wire_index == wire_index:
                return edge
        raise KeyError(f"no cuttable edge on wire {wire} at index {wire_index}")

    def to_networkx(self) -> nx.DiGraph:
        """The directed multiqubit-gate graph, for generic graph algorithms."""
        graph = nx.DiGraph()
        for vertex_id in range(self.num_vertices):
            graph.add_node(vertex_id, weight=self.vertex_weights[vertex_id])
        for edge in self.edges:
            graph.add_edge(edge.source, edge.target, wire=edge.wire)
        return graph

    def is_connected(self) -> bool:
        if self.num_vertices <= 1:
            return True
        return nx.is_weakly_connected(self.to_networkx())


def build_circuit_graph(circuit: QuantumCircuit) -> CircuitGraph:
    """Build the cut graph of ``circuit``.

    Raises
    ------
    ValueError
        If some wire carries no multiqubit gate (the paper assumes fully
        connected circuits; disconnected wires need no cutting and should
        be split off by the caller beforehand).
    """
    vertices: List[int] = [
        position for position, gate in enumerate(circuit) if gate.is_multiqubit
    ]
    position_to_vertex = {position: idx for idx, position in enumerate(vertices)}

    wire_vertices: Dict[int, List[int]] = {q: [] for q in range(circuit.num_qubits)}
    for position in vertices:
        for qubit in circuit[position].qubits:
            wire_vertices[qubit].append(position_to_vertex[position])

    for qubit, on_wire in wire_vertices.items():
        if not on_wire:
            raise ValueError(
                f"wire {qubit} carries no multiqubit gate; circuit is not "
                "fully connected (split disconnected wires before cutting)"
            )

    edges: List[WireEdge] = []
    for qubit, on_wire in wire_vertices.items():
        for index in range(len(on_wire) - 1):
            edges.append(
                WireEdge(
                    source=on_wire[index],
                    target=on_wire[index + 1],
                    wire=qubit,
                    wire_index=index + 1,
                )
            )

    vertex_weights = [0] * len(vertices)
    for qubit, on_wire in wire_vertices.items():
        vertex_weights[on_wire[0]] += 1

    return CircuitGraph(circuit, vertices, edges, vertex_weights, wire_vertices)
