"""Circuit intermediate representation: gates, circuits and the cut graph."""

from .gates import Gate, gate_matrix, is_supported_gate
from .circuit import QuantumCircuit
from .dag import CircuitGraph, WireEdge, build_circuit_graph
from .qasm import QasmError, from_qasm, to_qasm
from .analysis import CircuitReport, analyze_circuit, interaction_graph, min_bipartition_cuts

__all__ = [
    "Gate",
    "gate_matrix",
    "is_supported_gate",
    "QuantumCircuit",
    "CircuitGraph",
    "WireEdge",
    "build_circuit_graph",
    "QasmError",
    "from_qasm",
    "to_qasm",
    "CircuitReport",
    "analyze_circuit",
    "interaction_graph",
    "min_bipartition_cuts",
]
