"""Circuit analysis: structure diagnostics for cutting and compilation.

Answers the questions a CutQC user asks before spending search time:
How densely connected is this circuit?  What is the minimum number of wire
cuts *any* bipartition needs (capacity ignored)?  Which wires carry the
most interaction?  The cut searcher's behaviour on the paper's benchmarks
("supremacy, Grover and AQFT are more densely connected circuits and
generally require more postprocessing", §6.1) becomes quantitative here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from .circuit import QuantumCircuit
from .dag import build_circuit_graph

__all__ = [
    "interaction_graph",
    "min_bipartition_cuts",
    "wire_traffic",
    "layer_profile",
    "CircuitReport",
    "analyze_circuit",
]


def interaction_graph(circuit: QuantumCircuit) -> nx.Graph:
    """Qubit-interaction graph: edge weight = number of 2q gates."""
    graph = nx.Graph()
    graph.add_nodes_from(range(circuit.num_qubits))
    for gate in circuit:
        if gate.is_multiqubit:
            a, b = gate.qubits
            if graph.has_edge(a, b):
                graph[a][b]["weight"] += 1
            else:
                graph.add_edge(a, b, weight=1)
    return graph


def min_bipartition_cuts(circuit: QuantumCircuit) -> int:
    """Global minimum wire-cut count over all 2-way gate partitions.

    Stoer-Wagner minimum cut of the undirected multiqubit-gate graph —
    a lower bound on ``K`` for any feasible 2-subcircuit solution, and
    therefore on the searcher's 2-cluster objective exponent.
    """
    graph = build_circuit_graph(circuit)
    if graph.num_vertices < 2:
        return 0
    undirected = nx.Graph()
    undirected.add_nodes_from(range(graph.num_vertices))
    for edge in graph.edges:
        if undirected.has_edge(edge.source, edge.target):
            undirected[edge.source][edge.target]["weight"] += 1
        else:
            undirected.add_edge(edge.source, edge.target, weight=1)
    cut_value, _ = nx.stoer_wagner(undirected)
    return int(cut_value)


def wire_traffic(circuit: QuantumCircuit) -> Dict[int, int]:
    """Multiqubit-gate count per wire — the wires cuts must negotiate."""
    traffic = {q: 0 for q in range(circuit.num_qubits)}
    for gate in circuit:
        if gate.is_multiqubit:
            for qubit in gate.qubits:
                traffic[qubit] += 1
    return traffic


def layer_profile(circuit: QuantumCircuit) -> List[Tuple[int, int]]:
    """Per-layer (1q, 2q) gate counts under greedy ASAP layering."""
    frontier = [0] * circuit.num_qubits
    layers: Dict[int, List[int]] = {}
    for gate in circuit:
        level = max(frontier[q] for q in gate.qubits)
        for q in gate.qubits:
            frontier[q] = level + 1
        counts = layers.setdefault(level, [0, 0])
        counts[1 if gate.is_multiqubit else 0] += 1
    return [
        (layers[level][0], layers[level][1]) for level in sorted(layers)
    ]


@dataclass
class CircuitReport:
    """Summary statistics for one circuit."""

    num_qubits: int
    num_gates: int
    num_2q_gates: int
    depth: int
    two_qubit_depth: int
    fully_connected: bool
    min_bipartition_cuts: int
    max_wire_traffic: int
    interaction_density: float  # 2q gates / possible qubit pairs

    def summary(self) -> str:
        return (
            f"{self.num_qubits} qubits, {self.num_gates} gates "
            f"({self.num_2q_gates} two-qubit), depth {self.depth} "
            f"(2q depth {self.two_qubit_depth}); "
            f"min 2-way cut {self.min_bipartition_cuts}, "
            f"interaction density {self.interaction_density:.2f}"
        )


def analyze_circuit(circuit: QuantumCircuit) -> CircuitReport:
    """Compute a :class:`CircuitReport` for ``circuit``."""
    num_2q = circuit.multiqubit_gate_count()
    pairs = circuit.num_qubits * (circuit.num_qubits - 1) / 2
    connected = circuit.is_fully_connected()
    return CircuitReport(
        num_qubits=circuit.num_qubits,
        num_gates=len(circuit),
        num_2q_gates=num_2q,
        depth=circuit.depth(),
        two_qubit_depth=circuit.two_qubit_depth(),
        fully_connected=connected,
        min_bipartition_cuts=min_bipartition_cuts(circuit) if connected else 0,
        max_wire_traffic=max(wire_traffic(circuit).values(), default=0),
        interaction_density=(
            interaction_graph(circuit).number_of_edges() / pairs if pairs else 0.0
        ),
    )
