"""Quantum circuit container and builder API.

A :class:`QuantumCircuit` is an ordered list of :class:`~repro.circuits.gates.Gate`
applications on ``num_qubits`` wires.  It exposes a fluent builder API
(``circuit.h(0).cx(0, 1)``) mirroring common frameworks, plus structural
queries used by the cutter (wire occupation, connectivity, depth).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .gates import Gate

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """An ordered sequence of gates over a fixed set of qubit wires."""

    def __init__(self, num_qubits: int, gates: Optional[Iterable[Gate]] = None):
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        self.num_qubits = int(num_qubits)
        self._gates: List[Gate] = []
        if gates is not None:
            for gate in gates:
                self.append(gate)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    @property
    def gates(self) -> Tuple[Gate, ...]:
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index: int) -> Gate:
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return self.num_qubits == other.num_qubits and self._gates == other._gates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantumCircuit(num_qubits={self.num_qubits}, "
            f"num_gates={len(self._gates)})"
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def _unchecked(
        cls, num_qubits: int, gates: Iterable[Gate]
    ) -> "QuantumCircuit":
        """Adopt an already-validated gate list without re-checking it.

        Internal fast path for hot builders (the variant factory emits
        thousands of circuits whose gates were all validated once); the
        caller guarantees every gate targets qubits below ``num_qubits``.
        """
        circuit = cls.__new__(cls)
        circuit.num_qubits = int(num_qubits)
        circuit._gates = list(gates)
        return circuit

    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append a gate, validating its qubits are in range."""
        for qubit in gate.qubits:
            if qubit < 0 or qubit >= self.num_qubits:
                raise ValueError(
                    f"gate {gate.name!r} targets qubit {qubit}, but circuit "
                    f"has {self.num_qubits} qubits"
                )
        self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        for gate in gates:
            self.append(gate)
        return self

    def add(self, name: str, qubits: Sequence[int], *params: float) -> "QuantumCircuit":
        return self.append(Gate(name, tuple(qubits), tuple(params)))

    # Fluent single-qubit builders -------------------------------------------------
    def i(self, q: int) -> "QuantumCircuit":
        return self.add("i", (q,))

    def x(self, q: int) -> "QuantumCircuit":
        return self.add("x", (q,))

    def y(self, q: int) -> "QuantumCircuit":
        return self.add("y", (q,))

    def z(self, q: int) -> "QuantumCircuit":
        return self.add("z", (q,))

    def h(self, q: int) -> "QuantumCircuit":
        return self.add("h", (q,))

    def s(self, q: int) -> "QuantumCircuit":
        return self.add("s", (q,))

    def sdg(self, q: int) -> "QuantumCircuit":
        return self.add("sdg", (q,))

    def t(self, q: int) -> "QuantumCircuit":
        return self.add("t", (q,))

    def tdg(self, q: int) -> "QuantumCircuit":
        return self.add("tdg", (q,))

    def sx(self, q: int) -> "QuantumCircuit":
        return self.add("sx", (q,))

    def sy(self, q: int) -> "QuantumCircuit":
        return self.add("sy", (q,))

    def rx(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("rx", (q,), theta)

    def ry(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("ry", (q,), theta)

    def rz(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("rz", (q,), theta)

    def p(self, lam: float, q: int) -> "QuantumCircuit":
        return self.add("p", (q,), lam)

    def u(self, theta: float, phi: float, lam: float, q: int) -> "QuantumCircuit":
        return self.add("u", (q,), theta, phi, lam)

    # Fluent two-qubit builders ----------------------------------------------------
    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.add("cx", (control, target))

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        return self.add("cz", (a, b))

    def cp(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        return self.add("cp", (control, target), lam)

    def rzz(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.add("rzz", (a, b), theta)

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.add("swap", (a, b))

    def ccx(self, c1: int, c2: int, target: int) -> "QuantumCircuit":
        """Toffoli, decomposed into the standard 1-/2-qubit gate network."""
        self.h(target)
        self.cx(c2, target)
        self.tdg(target)
        self.cx(c1, target)
        self.t(target)
        self.cx(c2, target)
        self.tdg(target)
        self.cx(c1, target)
        self.t(c2)
        self.t(target)
        self.h(target)
        self.cx(c1, c2)
        self.t(c1)
        self.tdg(c2)
        self.cx(c1, c2)
        return self

    def ccz(self, c1: int, c2: int, target: int) -> "QuantumCircuit":
        """Doubly-controlled Z via the Toffoli network conjugated by H."""
        self.h(target)
        self.ccx(c1, c2, target)
        self.h(target)
        return self

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def compose(
        self, other: "QuantumCircuit", qubits: Optional[Sequence[int]] = None
    ) -> "QuantumCircuit":
        """Append ``other``'s gates, optionally remapping its qubits."""
        if qubits is None:
            mapping = list(range(other.num_qubits))
        else:
            mapping = list(qubits)
        if len(mapping) != other.num_qubits:
            raise ValueError(
                f"mapping of length {len(mapping)} does not cover "
                f"{other.num_qubits} qubits"
            )
        for gate in other:
            self.append(gate.on(*(mapping[q] for q in gate.qubits)))
        return self

    def inverse(self) -> "QuantumCircuit":
        """The adjoint circuit (gates reversed and inverted)."""
        inverted = QuantumCircuit(self.num_qubits)
        for gate in reversed(self._gates):
            inverted.append(gate.dagger())
        return inverted

    def copy(self) -> "QuantumCircuit":
        return QuantumCircuit(self.num_qubits, self._gates)

    def remapped(self, mapping: Sequence[int], num_qubits: int) -> "QuantumCircuit":
        """A copy with qubit ``q`` relabelled to ``mapping[q]``."""
        out = QuantumCircuit(num_qubits)
        for gate in self._gates:
            out.append(gate.on(*(mapping[q] for q in gate.qubits)))
        return out

    # ------------------------------------------------------------------
    # Parameters and rebinding
    # ------------------------------------------------------------------
    def parameters(self) -> Tuple[float, ...]:
        """All free parameters, flattened in gate order.

        Only parametric gates (rx/ry/rz/p/u/cp/rzz) contribute; a circuit
        with ``u`` gates contributes three values per ``u``.  The tuple is
        exactly what :meth:`bind` consumes.
        """
        values: List[float] = []
        for gate in self._gates:
            values.extend(gate.params)
        return tuple(values)

    @property
    def num_parameters(self) -> int:
        return sum(len(gate.params) for gate in self._gates)

    def structure(self) -> Tuple[Tuple[str, Tuple[int, ...]], ...]:
        """The parameter-free skeleton: ``(name, qubits)`` per gate.

        Two circuits with equal structure differ at most in rotation
        angles — they share cuts, variant plans, and fusion partitions.
        """
        return tuple((gate.name, gate.qubits) for gate in self._gates)

    def bind(
        self, values: Sequence[float]
    ) -> Tuple["QuantumCircuit", Tuple[int, ...]]:
        """Rebind all free parameters; report which gates changed.

        ``values`` must have length :attr:`num_parameters` and is consumed
        in gate order (the same order :meth:`parameters` produces).
        Returns ``(bound_circuit, changed_gate_indices)``.  Gates whose
        parameters are bit-identical are **reused by object identity**, so
        downstream identity/equality-keyed caches (fusion blocks, variant
        bodies) still hit for the untouched parts of the circuit.
        """
        values = [float(v) for v in values]
        if len(values) != self.num_parameters:
            raise ValueError(
                f"bind expects {self.num_parameters} parameter(s), "
                f"got {len(values)}"
            )
        cursor = 0
        new_gates: List[Gate] = []
        changed: List[int] = []
        for index, gate in enumerate(self._gates):
            count = len(gate.params)
            if count == 0:
                new_gates.append(gate)
                continue
            params = tuple(values[cursor:cursor + count])
            cursor += count
            if params == gate.params:
                new_gates.append(gate)
            else:
                new_gates.append(Gate(gate.name, gate.qubits, params))
                changed.append(index)
        bound = QuantumCircuit._unchecked(self.num_qubits, new_gates)
        return bound, tuple(changed)

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    def gates_on_wire(self, qubit: int) -> List[Tuple[int, Gate]]:
        """(position-in-circuit, gate) pairs touching ``qubit``, in order."""
        return [
            (index, gate)
            for index, gate in enumerate(self._gates)
            if qubit in gate.qubits
        ]

    def multiqubit_gate_count(self) -> int:
        return sum(1 for gate in self._gates if gate.is_multiqubit)

    def active_qubits(self) -> List[int]:
        """Qubits touched by at least one gate."""
        seen = set()
        for gate in self._gates:
            seen.update(gate.qubits)
        return sorted(seen)

    def depth(self) -> int:
        """Circuit depth counting all gates."""
        frontier = [0] * self.num_qubits
        for gate in self._gates:
            level = max(frontier[q] for q in gate.qubits) + 1
            for q in gate.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def two_qubit_depth(self) -> int:
        """Circuit depth counting only multiqubit gates."""
        frontier = [0] * self.num_qubits
        for gate in self._gates:
            if not gate.is_multiqubit:
                continue
            level = max(frontier[q] for q in gate.qubits) + 1
            for q in gate.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def is_fully_connected(self) -> bool:
        """Whether multiqubit gates connect all qubits into one component."""
        parent = list(range(self.num_qubits))

        def find(a: int) -> int:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for gate in self._gates:
            if gate.is_multiqubit:
                ra, rb = find(gate.qubits[0]), find(gate.qubits[1])
                if ra != rb:
                    parent[ra] = rb
        roots = {find(q) for q in range(self.num_qubits)}
        return len(roots) == 1

    def count_ops(self) -> dict:
        """Gate-name histogram, like Qiskit's ``count_ops``."""
        counts: dict = {}
        for gate in self._gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    def draw(self) -> str:
        """A minimal text diagram (one row per qubit), for debugging."""
        rows = [[f"q{q}: "] for q in range(self.num_qubits)]
        for gate in self._gates:
            width = max(len(gate.name), 2) + 2
            column = max(len("".join(row)) for row in rows)
            for q in range(self.num_qubits):
                pad = column - len("".join(rows[q]))
                rows[q].append("-" * pad)
            for q in range(self.num_qubits):
                if q in gate.qubits:
                    tag = gate.name if q == gate.qubits[-1] else "o"
                    rows[q].append(f"-{tag:-<{width - 1}}")
                else:
                    rows[q].append("-" * width)
        return "\n".join("".join(row) for row in rows)


def _almost_equal(a: float, b: float) -> bool:  # pragma: no cover - helper
    return math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-12)
