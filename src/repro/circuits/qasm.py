"""OpenQASM 2.0 interop (the subset this package's gate set spans).

Lets circuits cross between this toolchain and mainstream stacks
(Qiskit/Cirq export OpenQASM 2): ``to_qasm`` serializes any supported
circuit; ``from_qasm`` parses programs using one quantum register and the
standard-library gates that map onto :mod:`repro.circuits.gates`.

The parser is deliberately small: no gate definitions, no classical
control, no includes beyond the conventional ``qelib1.inc`` line, and
measurements are ignored (this package's execution model measures every
qubit at the end, like the paper's shot model).
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

from .circuit import QuantumCircuit
from .gates import Gate

__all__ = ["to_qasm", "from_qasm", "QasmError"]


class QasmError(ValueError):
    """Raised for programs outside the supported OpenQASM subset."""


#: package gate name -> OpenQASM gate name
_EXPORT_NAMES = {
    "i": "id",
    "p": "u1",
    "cp": "cu1",
    "sy": None,  # no standard qelib1 name; lowered on export
}

#: OpenQASM gate name -> (package name, parameter count)
_IMPORT_NAMES: Dict[str, Tuple[str, int]] = {
    "id": ("i", 0),
    "x": ("x", 0),
    "y": ("y", 0),
    "z": ("z", 0),
    "h": ("h", 0),
    "s": ("s", 0),
    "sdg": ("sdg", 0),
    "t": ("t", 0),
    "tdg": ("tdg", 0),
    "sx": ("sx", 0),
    "rx": ("rx", 1),
    "ry": ("ry", 1),
    "rz": ("rz", 1),
    "u1": ("p", 1),
    "p": ("p", 1),
    "u3": ("u", 3),
    "u": ("u", 3),
    "cx": ("cx", 0),
    "CX": ("cx", 0),
    "cz": ("cz", 0),
    "cu1": ("cp", 1),
    "cp": ("cp", 1),
    "rzz": ("rzz", 1),
    "swap": ("swap", 0),
}


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialize ``circuit`` as an OpenQASM 2.0 program."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
        f"creg c[{circuit.num_qubits}];",
    ]
    for gate in circuit:
        lines.extend(_export_gate(gate))
    return "\n".join(lines) + "\n"


def _export_gate(gate: Gate) -> List[str]:
    if gate.name == "sy":
        # qelib1 has no sqrt(Y); emit the exact native equivalent.
        q = gate.qubits[0]
        return [
            f"rz(-pi/2) q[{q}];",
            f"sx q[{q}];",
            f"rz(pi/2) q[{q}];",
        ]
    name = _EXPORT_NAMES.get(gate.name, gate.name)
    params = ""
    if gate.params:
        params = "(" + ",".join(_format_angle(p) for p in gate.params) + ")"
    qubits = ",".join(f"q[{q}]" for q in gate.qubits)
    return [f"{name}{params} {qubits};"]


def _format_angle(value: float) -> str:
    """Render common multiples of pi symbolically, else as a float."""
    for denominator in (1, 2, 3, 4, 6, 8, 16):
        for numerator_sign in (1, -1):
            target = numerator_sign * math.pi / denominator
            if abs(value - target) < 1e-12:
                sign = "-" if numerator_sign < 0 else ""
                return f"{sign}pi" if denominator == 1 else f"{sign}pi/{denominator}"
    return repr(float(value))


_STATEMENT = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"(?:\((?P<params>[^)]*)\))?"
    r"\s+(?P<args>[^;]+)$"
)
_QUBIT = re.compile(r"^q\[(\d+)\]$")

_ANGLE_ENV = {"pi": math.pi, "e": math.e}


def _parse_angle(text: str) -> float:
    """Evaluate an angle expression (numbers, pi, + - * /, parentheses)."""
    cleaned = text.strip()
    if not re.fullmatch(r"[0-9eE\.\+\-\*/\(\)\s]*|.*pi.*", cleaned):
        raise QasmError(f"unsupported angle expression {text!r}")
    if not re.fullmatch(r"[0-9eEpi\.\+\-\*/\(\)\s]+", cleaned):
        raise QasmError(f"unsupported angle expression {text!r}")
    try:
        return float(eval(cleaned, {"__builtins__": {}}, _ANGLE_ENV))
    except Exception as error:
        raise QasmError(f"cannot evaluate angle {text!r}: {error}") from None


def from_qasm(text: str) -> QuantumCircuit:
    """Parse an OpenQASM 2.0 program (single quantum register subset)."""
    num_qubits = None
    circuit: QuantumCircuit | None = None
    pending: List[Gate] = []
    # Strip comments, normalize whitespace, split on semicolons.
    stripped = re.sub(r"//[^\n]*", "", text)
    statements = [s.strip() for s in stripped.replace("\n", " ").split(";")]
    for statement in statements:
        if not statement:
            continue
        lowered = statement.lower()
        if lowered.startswith("openqasm"):
            if "2.0" not in statement:
                raise QasmError(f"unsupported OpenQASM version: {statement}")
            continue
        if lowered.startswith("include"):
            continue
        if lowered.startswith("qreg"):
            match = re.fullmatch(r"qreg\s+([A-Za-z_]\w*)\[(\d+)\]", statement)
            if not match:
                raise QasmError(f"cannot parse register: {statement}")
            if num_qubits is not None:
                raise QasmError("only one quantum register is supported")
            if match.group(1) != "q":
                raise QasmError("the quantum register must be named 'q'")
            num_qubits = int(match.group(2))
            circuit = QuantumCircuit(num_qubits)
            for gate in pending:  # pragma: no cover - gates precede qreg
                circuit.append(gate)
            continue
        if lowered.startswith("creg") or lowered.startswith("barrier"):
            continue
        if lowered.startswith("measure") or lowered.startswith("reset"):
            continue  # end-of-circuit measurement is implicit here
        match = _STATEMENT.match(statement)
        if not match:
            raise QasmError(f"cannot parse statement: {statement!r}")
        qasm_name = match.group("name")
        if qasm_name not in _IMPORT_NAMES:
            raise QasmError(f"unsupported gate {qasm_name!r}")
        name, expected_params = _IMPORT_NAMES[qasm_name]
        params_text = match.group("params")
        params = (
            tuple(_parse_angle(p) for p in params_text.split(","))
            if params_text
            else ()
        )
        if len(params) != expected_params:
            raise QasmError(
                f"gate {qasm_name!r} expects {expected_params} parameter(s), "
                f"got {len(params)}"
            )
        qubits = []
        for arg in match.group("args").split(","):
            qubit_match = _QUBIT.match(arg.strip())
            if not qubit_match:
                raise QasmError(f"cannot parse qubit argument {arg.strip()!r}")
            qubits.append(int(qubit_match.group(1)))
        gate = Gate(name, tuple(qubits), params)
        if circuit is None:
            raise QasmError("gate statement before qreg declaration")
        circuit.append(gate)
    if circuit is None:
        raise QasmError("program declares no quantum register")
    return circuit
