"""Gate definitions and unitary matrices.

Every gate used by the toolchain is a :class:`Gate` instance: a name, the
qubits it acts on, and optional real parameters.  Matrices follow the
convention that the *first* qubit of a multi-qubit gate is the most
significant bit of the gate's local index, consistent with
:mod:`repro.utils`.

Only 1- and 2-qubit gates may appear in circuits handed to the cutter (the
paper's MIP model assumes native-gate circuits); the library decomposes
larger primitives (e.g. Toffoli) before emitting circuits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "Gate",
    "gate_matrix",
    "is_supported_gate",
    "SUPPORTED_GATES",
    "SINGLE_QUBIT_GATES",
    "TWO_QUBIT_GATES",
    "PARAM_COUNTS",
    "PAULI_MATRICES",
]

_SQRT2_INV = 1.0 / math.sqrt(2.0)

_FIXED_1Q: Dict[str, np.ndarray] = {
    "i": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "h": np.array([[1, 1], [1, -1]], dtype=complex) * _SQRT2_INV,
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "t": np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex),
    "tdg": np.array([[1, 0], [0, np.exp(-1j * math.pi / 4)]], dtype=complex),
    # sqrt(X) and sqrt(Y), used by the supremacy circuits and as a native gate.
    "sx": 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex),
    "sy": 0.5 * np.array([[1 + 1j, -1 - 1j], [1 + 1j, 1 + 1j]], dtype=complex),
}

_FIXED_2Q: Dict[str, np.ndarray] = {
    "cx": np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
    ),
    "cz": np.diag([1, 1, 1, -1]).astype(complex),
    "swap": np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    ),
}

_PARAMETRIC_1Q = {"rx", "ry", "rz", "p", "u"}
_PARAMETRIC_2Q = {"cp", "rzz"}

SINGLE_QUBIT_GATES = frozenset(_FIXED_1Q) | _PARAMETRIC_1Q
TWO_QUBIT_GATES = frozenset(_FIXED_2Q) | _PARAMETRIC_2Q
SUPPORTED_GATES = SINGLE_QUBIT_GATES | TWO_QUBIT_GATES

PAULI_MATRICES: Dict[str, np.ndarray] = {
    "I": _FIXED_1Q["i"],
    "X": _FIXED_1Q["x"],
    "Y": _FIXED_1Q["y"],
    "Z": _FIXED_1Q["z"],
}

_PARAM_COUNTS = {"rx": 1, "ry": 1, "rz": 1, "p": 1, "u": 3, "cp": 1, "rzz": 1}

#: Public view of the per-gate parameter arities; every other supported
#: gate is parameter-free, so a gate's *structure* is just (name, qubits).
PARAM_COUNTS = dict(_PARAM_COUNTS)


@dataclass(frozen=True)
class Gate:
    """A gate application: name, target qubits and parameters.

    Instances are immutable and hashable so they can be used as graph nodes.
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        name = self.name.lower()
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        if name not in SUPPORTED_GATES:
            raise ValueError(f"unsupported gate {name!r}")
        arity = 1 if name in SINGLE_QUBIT_GATES else 2
        if len(self.qubits) != arity:
            raise ValueError(
                f"gate {name!r} expects {arity} qubit(s), got {self.qubits}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {name!r} has duplicate qubits {self.qubits}")
        expected_params = _PARAM_COUNTS.get(name, 0)
        if len(self.params) != expected_params:
            raise ValueError(
                f"gate {name!r} expects {expected_params} parameter(s), "
                f"got {len(self.params)}"
            )

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def is_multiqubit(self) -> bool:
        return len(self.qubits) > 1

    @property
    def num_params(self) -> int:
        return _PARAM_COUNTS.get(self.name, 0)

    @property
    def is_parametric(self) -> bool:
        """Whether this gate carries free rotation parameters."""
        return self.name in _PARAM_COUNTS

    def with_params(self, params: Tuple[float, ...]) -> "Gate":
        """The same gate with new parameter values (arity re-validated)."""
        return Gate(self.name, self.qubits, tuple(params))

    def matrix(self) -> np.ndarray:
        """Unitary matrix for this gate (2x2 or 4x4)."""
        return gate_matrix(self.name, self.params)

    def on(self, *qubits: int) -> "Gate":
        """The same gate applied to different qubits."""
        return Gate(self.name, tuple(qubits), self.params)

    def dagger(self) -> "Gate":
        """The inverse gate (as a named gate where possible)."""
        inverses = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}
        if self.name in inverses:
            return Gate(inverses[self.name], self.qubits)
        if self.name in {"i", "x", "y", "z", "h", "cx", "cz", "swap"}:
            return self
        if self.name in {"rx", "ry", "rz", "p", "cp", "rzz"}:
            return Gate(self.name, self.qubits, (-self.params[0],))
        if self.name == "u":
            theta, phi, lam = self.params
            return Gate("u", self.qubits, (-theta, -lam, -phi))
        if self.name == "sx":
            # sx^dagger = rx(-pi/2) up to global phase; express exactly.
            return Gate("rx", self.qubits, (-math.pi / 2.0,))
        if self.name == "sy":
            return Gate("ry", self.qubits, (-math.pi / 2.0,))
        raise ValueError(f"no inverse rule for gate {self.name!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = f", params={self.params}" if self.params else ""
        return f"Gate({self.name!r}, qubits={self.qubits}{params})"


def gate_matrix(name: str, params: Tuple[float, ...] = ()) -> np.ndarray:
    """Return the unitary for gate ``name`` with ``params``."""
    name = name.lower()
    if name in _FIXED_1Q:
        return _FIXED_1Q[name].copy()
    if name in _FIXED_2Q:
        return _FIXED_2Q[name].copy()
    if name == "rx":
        (theta,) = params
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)
    if name == "ry":
        (theta,) = params
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -s], [s, c]], dtype=complex)
    if name == "rz":
        (theta,) = params
        phase = np.exp(0.5j * theta)
        return np.array([[1 / phase, 0], [0, phase]], dtype=complex)
    if name == "p":
        (lam,) = params
        return np.array([[1, 0], [0, np.exp(1j * lam)]], dtype=complex)
    if name == "u":
        theta, phi, lam = params
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array(
            [
                [c, -np.exp(1j * lam) * s],
                [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
            ],
            dtype=complex,
        )
    if name == "cp":
        (lam,) = params
        return np.diag([1, 1, 1, np.exp(1j * lam)]).astype(complex)
    if name == "rzz":
        (theta,) = params
        phase = np.exp(0.5j * theta)
        return np.diag([1 / phase, phase, phase, 1 / phase]).astype(complex)
    raise ValueError(f"unsupported gate {name!r}")


def is_supported_gate(name: str) -> bool:
    """Whether ``name`` is a gate the toolchain understands."""
    return name.lower() in SUPPORTED_GATES
