"""Command-line interface: cut, evaluate and query circuits from a shell.

Examples
--------
Cut a 12-qubit supremacy circuit onto an 8-qubit device and show the plan::

    python -m repro cut --benchmark supremacy --qubits 12 --device-size 8

Run the full pipeline and print the top output states::

    python -m repro run --benchmark bv --qubits 11 --device-size 5 --top 5

Dynamic-definition query::

    python -m repro dd --benchmark bv --qubits 16 --device-size 10 \
        --active 2 --recursions 8

List virtual device presets::

    python -m repro devices

Run the job service and submit work to it::

    python -m repro serve --store /tmp/cutqc-store --port 8000
    python -m repro submit --url http://127.0.0.1:8000 \
        --benchmark bv --qubits 11 --device-size 5 --wait
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from .core import CutQC
from .cutting import CutSearchError
from .devices import DEVICE_PRESETS, get_device
from .library import BENCHMARKS, get_benchmark
from .metrics import chi_square_loss
from .obs import trace
from .sim import simulate_probabilities

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CutQC reproduction: cut large circuits onto small QPUs",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_circuit_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--benchmark", required=True, choices=sorted(BENCHMARKS),
            help="benchmark circuit family (paper §5.3)",
        )
        sub.add_argument("--qubits", type=int, required=True)
        sub.add_argument("--seed", type=int, default=0,
                         help="generator seed (randomized benchmarks)")
        sub.add_argument("--device-size", type=int, required=True,
                         help="max qubits per subcircuit (device size D)")
        sub.add_argument("--max-subcircuits", type=int, default=5)
        sub.add_argument("--max-cuts", type=int, default=10)
        sub.add_argument(
            "--method", choices=("auto", "mip", "heuristic"), default="auto",
            help="cut-search backend",
        )

    def add_execution_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--workers", type=int, default=1,
            help="processes for variant execution and kron reconstruction",
        )
        sub.add_argument(
            "--strategy", choices=("kron", "tensor_network", "auto"),
            default="auto", help="contraction strategy (default: auto)",
        )
        sub.add_argument(
            "--pool", metavar="SPEC",
            help="evaluate variants on a device pool; SPEC is a comma-"
                 "separated list of preset[:count], e.g. bogota:4,melbourne",
        )
        sub.add_argument(
            "--pool-workers", type=int, default=0, metavar="N",
            help="run the query pipeline on a persistent N-process worker "
                 "pool (shared-memory tensor transport; 0 = no pool)",
        )
        sub.add_argument(
            "--sim-batch", type=int, default=None, metavar="B",
            help="batched variant simulation: one fused body pass per init "
                 "batch of <= B states, measurement bases derived from the "
                 "retained states (default: on, 256; applies to exact and "
                 "--device evaluation)",
        )
        sub.add_argument(
            "--no-sim-batch", action="store_true",
            help="force the legacy per-variant execution path "
                 "(equivalent to --sim-batch 0)",
        )
        sub.add_argument(
            "--fusion-width", type=int, default=2, metavar="K",
            help="max fused-unitary width for --sim-batch's gate-fusion "
                 "pass (default: 2)",
        )
        sub.add_argument(
            "--trace", action="store_true",
            help="record spans across the whole pipeline and print the "
                 "span tree (wall time + per-stage percentages)",
        )
        sub.add_argument(
            "--max-retries", type=int, default=2, metavar="R",
            help="retry the command body up to R times on transient "
                 "faults (worker crashes, store IO; default: 2)",
        )
        sub.add_argument(
            "--no-degrade", dest="degrade", action="store_false",
            default=True,
            help="fail instead of falling back to serial in-process "
                 "evaluation when the worker pool is unrecoverable",
        )

    cut = commands.add_parser("cut", help="find cuts and print the plan")
    add_circuit_options(cut)
    cut.add_argument("--json", action="store_true",
                     help="machine-readable JSON output (plan, objective, "
                          "cut positions)")

    run = commands.add_parser("run", help="cut + evaluate + FD query")
    add_circuit_options(run)
    add_execution_options(run)
    run.add_argument("--top", type=int, default=5,
                     help="print this many highest-probability states")
    run.add_argument("--device", choices=sorted(DEVICE_PRESETS),
                     help="evaluate subcircuits on this noisy virtual device"
                          " (default: exact statevector)")
    run.add_argument("--shots", type=int, default=8192)
    run.add_argument("--trajectories", type=int, default=24, metavar="T",
                     help="Monte-Carlo trajectories per variant on "
                          "--device's batched noisy path (default: 24)")
    run.add_argument("--noisy-method",
                     choices=("trajectory", "density"), default="trajectory",
                     help="batched noisy estimator for --device: "
                          "Pauli-injection trajectories or the exact "
                          "density-matrix channel")
    run.add_argument("--verify", action="store_true",
                     help="compare against statevector ground truth")
    run.add_argument("--stream-shards", type=int, default=None, metavar="S",
                     help="stream the FD distribution as 2^S shards of "
                          "2^(n-S) entries each (bounded memory; --top "
                          "states are retained across shards)")
    run.add_argument("--json", action="store_true",
                     help="machine-readable JSON output (states, stats, "
                          "dedup/cache counters)")

    dd = commands.add_parser("dd", help="cut + evaluate + DD query")
    add_circuit_options(dd)
    add_execution_options(dd)
    dd.add_argument("--active", type=int, default=2,
                    help="active qubits per recursion (memory cap)")
    dd.add_argument("--recursions", type=int, default=8)
    dd.add_argument("--shots", type=int, default=None,
                    help="shots per pool job (0 = exact; default: device "
                         "setting)")
    dd.add_argument("--zoom-width", type=int, default=1, metavar="K",
                    help="expand the top-K frontier bins per round, "
                         "contracted in parallel when --workers > 1")
    dd.add_argument("--json", action="store_true",
                    help="machine-readable JSON output (recursions, "
                         "solution states, cache stats)")

    devices = commands.add_parser("devices", help="list device presets")
    devices.add_argument("--json", action="store_true",
                         help="machine-readable JSON output (preset specs)")

    serve = commands.add_parser(
        "serve", help="run the HTTP job service (artifact-store backed)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000,
                       help="listen port (0 = ephemeral)")
    serve.add_argument("--store", default=".cutqc-store", metavar="DIR",
                       help="artifact-store directory (default: .cutqc-store)")
    serve.add_argument("--replicas", type=int, default=1, metavar="N",
                       help="number of stateless API servers sharing the "
                            "store+journal (ports port..port+N-1; any "
                            "replica accepts, exactly one executes)")
    serve.add_argument("--store-bytes", default=None, metavar="BYTES",
                       help="LRU byte budget for the artifact store "
                            "(suffixes K/M/G; default: unbounded)")
    serve.add_argument("--tenant", action="append", default=None,
                       metavar="SPEC", dest="tenants",
                       help="tenant policy "
                            "name:weight[:max_queued[:max_concurrent]] "
                            "(repeatable; e.g. acme:3, free:1:16:2, "
                            "blocked:0)")
    serve.add_argument("--workers", type=int, default=2,
                       help="scheduler worker threads")
    serve.add_argument("--pool-workers", type=int, default=0, metavar="N",
                       help="share one persistent N-process worker pool "
                            "across all jobs (0 = no pool)")
    serve.add_argument("--max-pending", type=int, default=None, metavar="N",
                       help="reject submissions with a typed 503 "
                            "(code 'overloaded') while N jobs are already "
                            "queued (default: unbounded)")
    serve.add_argument("--max-retries", type=int, default=2, metavar="R",
                       help="per-stage retry budget for transient faults "
                            "(worker crashes, store IO; default: 2)")
    serve.add_argument("--no-degrade", dest="degrade",
                       action="store_false", default=True,
                       help="fail jobs instead of degrading to serial "
                            "in-process evaluation when the worker pool "
                            "is unrecoverable")
    serve.add_argument("--json", action="store_true",
                       help="print the startup banner as JSON")

    def add_client_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--url", default="http://127.0.0.1:8000",
                         help="job-service base URL")
        sub.add_argument("--json", action="store_true",
                         help="machine-readable JSON output")

    submit = commands.add_parser(
        "submit", help="submit a job to a running service"
    )
    add_client_options(submit)
    submit.add_argument("--benchmark", choices=sorted(BENCHMARKS))
    submit.add_argument("--qubits", type=int)
    submit.add_argument("--qasm-file", metavar="PATH",
                        help="submit this OpenQASM 2.0 file instead of a "
                             "library benchmark")
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--tenant", default=None, metavar="NAME",
                        help="submit as this tenant (fair scheduling + "
                             "quotas; default: 'default')")
    submit.add_argument("--device-size", type=int, required=True)
    submit.add_argument("--max-subcircuits", type=int, default=5)
    submit.add_argument("--max-cuts", type=int, default=10)
    submit.add_argument("--method",
                        choices=("auto", "mip", "heuristic"), default="auto")
    submit.add_argument("--query",
                        choices=("fd", "dd", "top_k", "variational"),
                        default="fd")
    submit.add_argument("--top", type=int, default=5)
    submit.add_argument("--iterations", type=int, default=20,
                        help="variational: SPSA optimizer iterations "
                             "(requires --benchmark qaoa)")
    submit.add_argument("--layers", type=int, default=1,
                        help="variational: QAOA ansatz depth p")
    submit.add_argument("--degree", type=int, default=3,
                        help="variational: random d-regular MaxCut "
                             "instance (0 = ring graph)")
    submit.add_argument("--active", type=int, default=2,
                        help="dd: active qubits per recursion")
    submit.add_argument("--recursions", type=int, default=8)
    submit.add_argument("--zoom-width", type=int, default=1)
    submit.add_argument("--shard-qubits", type=int, default=None,
                        help="top_k: stream the FD distribution as 2^S shards")
    submit.add_argument("--strategy",
                        choices=("kron", "tensor_network", "auto"),
                        default="auto")
    submit.add_argument("--device", choices=sorted(DEVICE_PRESETS),
                        help="evaluate subcircuit variants on this noisy "
                             "virtual device (batched noisy engine)")
    submit.add_argument("--shots", type=int, default=None,
                        help="shots per variant on --device (0 = noise-only "
                             "distributions; default: device setting)")
    submit.add_argument("--trajectories", type=int, default=24, metavar="T",
                        help="Monte-Carlo trajectories per variant for "
                             "--device's batched noisy estimator")
    submit.add_argument("--noisy-method",
                        choices=("trajectory", "density"),
                        default="trajectory",
                        help="batched noisy estimator used with --device")
    submit.add_argument("--sim-batch", type=int, default=None, metavar="B",
                        help="batched variant simulation with init batches "
                             "of <= B states (default: on, 256)")
    submit.add_argument("--no-sim-batch", action="store_true",
                        help="force per-variant execution "
                             "(equivalent to --sim-batch 0)")
    submit.add_argument("--fusion-width", type=int, default=2, metavar="K",
                        help="max fused-unitary width for --sim-batch")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job finishes and print the result")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="--wait polling timeout in seconds")
    submit.add_argument("--trace", action="store_true",
                        help="with --wait: fetch the job's span tree from "
                             "GET /jobs/<id>/trace and print it")

    status = commands.add_parser(
        "status", help="show one job's state, stage timings and cache hits"
    )
    add_client_options(status)
    status.add_argument("--job", required=True, metavar="JOB_ID")
    status.add_argument("--result", action="store_true",
                        help="fetch the query result instead of the status")

    jobs = commands.add_parser(
        "jobs", help="list the service's jobs and serving statistics"
    )
    add_client_options(jobs)

    return parser


def _build_circuit(args: argparse.Namespace):
    kwargs = {}
    if args.benchmark in ("supremacy", "adder"):
        kwargs["seed"] = args.seed
    return get_benchmark(args.benchmark, args.qubits, **kwargs)


def _parse_pool(spec: str, seed: int):
    """Build a DevicePool from ``preset[:count],...`` (e.g. ``bogota:4``)."""
    from .devices.pool import DevicePool

    devices = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, _, count = entry.partition(":")
        copies = int(count) if count else 1
        if copies < 1:
            raise ValueError(f"pool entry {entry!r} has a non-positive count")
        for copy in range(copies):
            devices.append(get_device(name, seed=seed + copy))
    if not devices:
        raise ValueError(f"pool spec {spec!r} names no devices")
    return DevicePool(devices)


def _cli_sim_batch(args: argparse.Namespace) -> Optional[int]:
    """Resolve --sim-batch/--no-sim-batch: None keeps batching default."""
    if getattr(args, "no_sim_batch", False):
        return 0
    return getattr(args, "sim_batch", None)


def _build_pipeline(args: argparse.Namespace, backend=None, device=None) -> CutQC:
    circuit = _build_circuit(args)
    pool = None
    pool_shots = None
    if getattr(args, "pool", None):
        pool = _parse_pool(args.pool, seed=args.seed)
        pool_shots = getattr(args, "shots", None)
    worker_pool = None
    pool_workers = getattr(args, "pool_workers", 0) or 0
    if pool_workers < 0:
        raise ValueError("--pool-workers must be >= 0")
    if pool_workers:
        from .postprocess.parallel import WorkerPool

        worker_pool = WorkerPool(pool_workers)
    return CutQC(
        circuit,
        max_subcircuit_qubits=args.device_size,
        max_subcircuits=args.max_subcircuits,
        max_cuts=args.max_cuts,
        method=args.method,
        backend=backend,
        device=device,
        device_shots=getattr(args, "shots", None) if device is not None else None,
        trajectories=getattr(args, "trajectories", 24),
        noisy_method=getattr(args, "noisy_method", "trajectory"),
        pool=pool,
        pool_shots=pool_shots,
        workers=getattr(args, "workers", 1),
        strategy=getattr(args, "strategy", "kron"),
        seed=args.seed,
        worker_pool=worker_pool,
        sim_batch=_cli_sim_batch(args),
        fusion_width=getattr(args, "fusion_width", 2),
    )


def _close_worker_pool(pipeline: Optional[CutQC]) -> None:
    """The CLI owns the pool it created in :func:`_build_pipeline`."""
    if pipeline is not None and pipeline.worker_pool is not None:
        pipeline.worker_pool.close()


def _print_trace_tree(document: dict, as_json: bool) -> None:
    """Render a span tree; on stderr under --json so stdout stays parseable."""
    stream = sys.stderr if as_json else sys.stdout
    print(trace.format_tree(document), file=stream)


def _run_traced_command(args: argparse.Namespace, name: str, body) -> int:
    """Run a CLI command body, optionally under a root span."""
    if not getattr(args, "trace", False):
        return body()
    with trace.start(name) as root:
        code = body()
    _print_trace_tree(root.to_dict(), args.json)
    return code


def _run_resilient(
    args: argparse.Namespace, name: str, pipeline: CutQC, rebuild, body
) -> int:
    """Run a pipeline command under the CLI retry/degrade policy.

    Transient faults (see :func:`repro.faults.is_transient`) retry the
    command up to ``--max-retries`` times; an unrecoverable worker pool
    rebuilds the pipeline without one and re-runs serially — degraded,
    not failed — unless ``--no-degrade``.  The whole command body is
    idempotent (the pipeline recomputes from its inputs), so a retry is
    waste, never corruption.
    """
    from .faults import PoolUnrecoverableError, is_transient

    max_retries = max(0, getattr(args, "max_retries", 2))
    degraded = False
    attempt = 0
    try:
        while True:
            attempt += 1
            try:
                return _run_traced_command(
                    args, name, lambda: body(pipeline)
                )
            except PoolUnrecoverableError as error:
                if degraded or not getattr(args, "degrade", True):
                    raise
                degraded = True
                print(
                    f"warning: {error}; degrading to serial in-process "
                    "evaluation",
                    file=sys.stderr,
                )
                _close_worker_pool(pipeline)
                pipeline = rebuild()
            except Exception as error:  # noqa: BLE001 - taxonomy below
                if attempt > max_retries or not is_transient(error):
                    raise
                print(
                    f"warning: transient fault "
                    f"({type(error).__name__}: {error}); retrying",
                    file=sys.stderr,
                )
    finally:
        _close_worker_pool(pipeline)


def _command_cut(args: argparse.Namespace) -> int:
    from .viz import cut_diagram

    pipeline = _build_pipeline(args)
    cut = pipeline.cut()
    if args.json:
        document = {
            "command": "cut",
            "benchmark": args.benchmark,
            "qubits": pipeline.circuit.num_qubits,
            "device_size": args.device_size,
            "num_cuts": cut.num_cuts,
            "num_subcircuits": cut.num_subcircuits,
            "cut_positions": [[c.wire, c.wire_index] for c in cut.cuts],
            "subcircuits": [
                {
                    "index": sub.index,
                    "width": sub.width,
                    "init_lines": len(sub.init_lines),
                    "meas_lines": len(sub.meas_lines),
                    "output_lines": sub.num_effective,
                    "num_gates": len(sub.circuit),
                }
                for sub in cut.subcircuits
            ],
        }
        if pipeline.solution is not None:
            document["search_method"] = pipeline.solution.method
            document["objective"] = pipeline.solution.objective
        print(json.dumps(document, indent=2))
        return 0
    print(cut.summary())
    if pipeline.solution is not None:
        print(f"search method: {pipeline.solution.method}")
        print(f"objective (Eq. 14 FLOPs): {pipeline.solution.objective:.3e}")
    print("cut positions (wire, index): "
          f"{[(c.wire, c.wire_index) for c in cut.cuts]}")
    print(cut_diagram(cut))
    return 0


def _execution_report_dict(report) -> Optional[dict]:
    if report is None:
        return None
    return {
        "num_variants": report.num_variants,
        "num_unique_circuits": report.num_unique_circuits,
        "dedup_ratio": report.dedup_ratio,
        "mode": report.mode,
        "pool_makespan_seconds": report.pool_makespan_seconds,
        "pool_serial_seconds": report.pool_serial_seconds,
        "num_body_passes": report.num_body_passes,
        "sim_batch": report.sim_batch,
        "fusion_width": report.fusion_width,
    }


def _print_execution_report(report) -> None:
    if report is None:
        return
    line = (
        f"evaluation: {report.num_variants} variants -> "
        f"{report.num_unique_circuits} unique circuits "
        f"(dedup {report.dedup_ratio:.2f}x, {report.mode})"
    )
    if report.num_body_passes is not None:
        line += (
            f", {report.num_body_passes} fused body pass(es) "
            f"(fusion width {report.fusion_width})"
        )
    if report.pool_makespan_seconds is not None:
        line += (
            f", quantum makespan {report.pool_makespan_seconds:.3f}s "
            f"vs {report.pool_serial_seconds:.3f}s serial"
        )
    print(line)


def _top_states(probabilities: np.ndarray, top: int, num_qubits: int):
    from .utils import top_states

    return top_states(probabilities, top, num_qubits)


def _command_run(args: argparse.Namespace) -> int:
    device = None
    if args.device and args.pool:
        print("error: pass either --device or --pool, not both", file=sys.stderr)
        return 2
    if args.device:
        device = get_device(args.device, seed=args.seed)
        if device.num_qubits < args.device_size:
            print(
                f"error: preset {args.device} has {device.num_qubits} qubits "
                f"but --device-size is {args.device_size}",
                file=sys.stderr,
            )
            return 2
    try:
        pipeline = _build_pipeline(args, device=device)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    def rebuild() -> CutQC:
        poolless = argparse.Namespace(**vars(args))
        poolless.pool_workers = 0
        return _build_pipeline(poolless, device=device)

    return _run_resilient(
        args, "cli.run", pipeline, rebuild,
        lambda p: _command_run_body(args, p),
    )


def _command_run_body(args: argparse.Namespace, pipeline: CutQC) -> int:
    quiet = args.json
    cut = pipeline.cut()
    n = pipeline.circuit.num_qubits
    if not quiet:
        print(cut.summary())

    document = {
        "command": "run",
        "benchmark": args.benchmark,
        "qubits": n,
        "device_size": args.device_size,
        "num_cuts": cut.num_cuts,
        "num_subcircuits": cut.num_subcircuits,
    }

    if args.stream_shards is not None:
        shard_qubits = args.stream_shards
        if not 0 <= shard_qubits <= n:
            print(
                f"error: --stream-shards must be in [0, {n}]",
                file=sys.stderr,
            )
            return 2
        from .postprocess.stream import top_k_from_shards

        on_shard = None
        errors: List[float] = []
        if args.verify:
            truth = simulate_probabilities(pipeline.circuit).reshape(
                1 << shard_qubits, -1
            )

            def on_shard(shard):
                errors.append(
                    float(
                        np.abs(
                            shard.probabilities - truth[shard.index]
                        ).max()
                    )
                )

        # One pass over the stream: each shard folds into the running
        # top-k (and the verification check) before being discarded.
        states = top_k_from_shards(
            pipeline.fd_stream(shard_qubits),
            num_qubits=n,
            shard_qubits=shard_qubits,
            k=max(1, args.top),
            on_shard=on_shard,
        )
        max_abs_error = max(errors) if errors else None
        stream_stats = pipeline.stream_stats
        report = pipeline.execution_report
        document["execution"] = _execution_report_dict(report)
        if pipeline.parallel_stats is not None:
            document["parallel"] = pipeline.parallel_stats.as_dict()
        document["query"] = {"mode": "fd_stream", **stream_stats.as_dict()}
        document["top_states"] = [
            {"state": bits, "probability": probability}
            for bits, probability in states
        ]
        if max_abs_error is not None:
            document["verify_max_abs_error"] = max_abs_error
        if quiet:
            print(json.dumps(document, indent=2))
            return 0
        _print_execution_report(report)
        print(
            f"FD stream: 2^{shard_qubits} shards of 2^{n - shard_qubits} "
            f"entries ({stream_stats.peak_shard_bytes} B peak/shard), "
            f"{stream_stats.elapsed_seconds:.3f}s, collapse-cache hit rate "
            f"{stream_stats.cache_hit_rate:.2f}"
        )
        print(f"top {args.top} states:")
        for bits, probability in states:
            print(f"  |{bits}>  p = {probability:.6f}")
        if max_abs_error is not None:
            print(f"max |shard - truth| error: {max_abs_error:.3e}")
        return 0

    result = pipeline.fd_query(workers=args.workers)
    report = pipeline.execution_report
    stats = result.stats
    probabilities = result.probabilities
    document["execution"] = _execution_report_dict(report)
    if pipeline.parallel_stats is not None:
        document["parallel"] = pipeline.parallel_stats.as_dict()
    document["query"] = {
        "mode": "fd",
        "strategy": stats.strategy,
        "num_terms": stats.num_terms,
        "num_skipped": stats.num_skipped,
        "elapsed_seconds": stats.elapsed_seconds,
        "workers": stats.workers,
        "subcircuit_order": list(stats.subcircuit_order),
    }
    document["top_states"] = [
        {"state": bits, "probability": probability}
        for bits, probability in _top_states(probabilities, args.top, n)
    ]
    verify_loss = None
    if args.verify:
        truth = simulate_probabilities(pipeline.circuit)
        verify_loss = chi_square_loss(np.clip(probabilities, 0, None), truth)
        document["verify_chi2"] = float(verify_loss)
    if quiet:
        print(json.dumps(document, indent=2))
        return 0
    _print_execution_report(report)
    print(
        f"FD query [{stats.strategy}]: {stats.num_terms} Kronecker terms "
        f"({stats.num_skipped} skipped), {stats.elapsed_seconds:.3f}s, "
        f"{stats.workers} worker(s)"
    )
    from .viz import histogram

    print(f"top {args.top} states:")
    print(histogram(probabilities, top=args.top))
    if verify_loss is not None:
        print(f"chi^2 vs statevector ground truth: {verify_loss:.6f}")
    return 0


def _command_dd(args: argparse.Namespace) -> int:
    if args.zoom_width < 1:
        print("error: --zoom-width must be positive", file=sys.stderr)
        return 2
    try:
        pipeline = _build_pipeline(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    def rebuild() -> CutQC:
        poolless = argparse.Namespace(**vars(args))
        poolless.pool_workers = 0
        return _build_pipeline(poolless)

    return _run_resilient(
        args, "cli.dd", pipeline, rebuild,
        lambda p: _command_dd_body(args, p),
    )


def _command_dd_body(args: argparse.Namespace, pipeline: CutQC) -> int:
    quiet = args.json
    cut = pipeline.cut()
    if not quiet:
        print(cut.summary())
    query = pipeline.dd_query(
        max_active_qubits=args.active,
        max_recursions=args.recursions,
        zoom_width=args.zoom_width,
    )
    n = pipeline.circuit.num_qubits
    states = query.solution_states(threshold=0.25)
    stats = query.stats()
    if quiet:
        document = {
            "command": "dd",
            "benchmark": args.benchmark,
            "qubits": n,
            "device_size": args.device_size,
            "num_cuts": cut.num_cuts,
            "num_subcircuits": cut.num_subcircuits,
            "execution": _execution_report_dict(pipeline.execution_report),
            "parallel": (
                pipeline.parallel_stats.as_dict()
                if pipeline.parallel_stats is not None
                else None
            ),
            "recursions": [
                {
                    "index": recursion.index,
                    "fixed": {str(w): b for w, b in recursion.fixed.items()},
                    "active": list(recursion.active),
                    "max_bin_probability": float(
                        recursion.probabilities.max()
                    ),
                    "elapsed_seconds": recursion.elapsed_seconds,
                }
                for recursion in query.recursions
            ],
            "solution_states": [
                {"state": bits, "probability": probability}
                for bits, probability in states
            ],
            "stats": stats.as_dict(),
        }
        print(json.dumps(document, indent=2))
        return 0
    for recursion in query.recursions:
        zoomed = "".join(
            str(recursion.fixed[w]) if w in recursion.fixed else "?"
            for w in range(n)
        )
        print(
            f"recursion {recursion.index + 1}: zoomed={zoomed} "
            f"active={recursion.active} "
            f"max-bin p={recursion.probabilities.max():.4f}"
        )
    print(
        f"DD stats: {stats.num_recursions} recursions in "
        f"{stats.num_rounds} round(s) (zoom width {stats.zoom_width}), "
        f"collapse-cache hit rate {stats.cache_hit_rate:.2f} "
        f"({stats.cache_hits} hits / {stats.cache_misses} misses)"
    )
    if states:
        print("solution states (p >= 0.25):")
        for bits, probability in states[:5]:
            print(f"  |{bits}>  p = {probability:.6f}")
    else:
        print("no dominant solution state resolved "
              "(dense output or too few recursions)")
    return 0


def _command_devices(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        document = {
            "command": "devices",
            "presets": [
                {
                    "preset": name,
                    "name": device.name,
                    "num_qubits": device.num_qubits,
                    "shots": device.shots,
                    "coupling_map": [list(pair) for pair in device.coupling_map],
                }
                for name, device in (
                    (preset, get_device(preset))
                    for preset in sorted(DEVICE_PRESETS)
                )
            ],
        }
        print(json.dumps(document, indent=2))
        return 0
    for name in sorted(DEVICE_PRESETS):
        print(get_device(name).describe())
    return 0


# ----------------------------------------------------------------------
# Job-service verbs
# ----------------------------------------------------------------------

def _parse_bytes(text: str) -> int:
    """``"512M"`` -> bytes; bare integers pass through."""
    units = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}
    text = str(text).strip()
    scale = units.get(text[-1:].lower())
    if scale is not None:
        text = text[:-1]
    return int(float(text) * (scale or 1))


def _command_serve(args: argparse.Namespace) -> int:
    from .service import ArtifactStore, JobServer, TenantConfig

    if args.replicas < 1:
        print("error: --replicas must be >= 1", file=sys.stderr)
        return 2
    max_bytes = (
        _parse_bytes(args.store_bytes)
        if args.store_bytes is not None
        else None
    )
    tenants = TenantConfig.parse_specs(args.tenants)
    store = ArtifactStore(args.store, max_bytes=max_bytes)
    # N stateless replicas over one shared store: each runs its own
    # scheduler, all tail the same journal, claims arbitrate execution.
    servers = [
        JobServer(
            store=store,
            host=args.host,
            port=args.port + index if args.port else 0,
            workers=args.workers,
            pool_workers=args.pool_workers,
            tenants=tenants,
            max_pending=args.max_pending,
            max_retries=args.max_retries,
            degrade=args.degrade,
        )
        for index in range(args.replicas)
    ]
    primary = servers[0]
    banner = {
        "command": "serve",
        "url": primary.url,
        "urls": [server.url for server in servers],
        "replicas": args.replicas,
        "store": str(store.root),
        "store_bytes": max_bytes,
        "tenants": tenants.to_dict()["policies"],
        "workers": primary.scheduler.num_workers,
        "pool_workers": (
            primary.scheduler.worker_pool.workers
            if primary.scheduler.worker_pool is not None
            else 0
        ),
    }
    if args.json:
        print(json.dumps(banner, indent=2), flush=True)
    else:
        for server in servers:
            print(
                f"job service listening on {server.url} "
                f"(store {store.root}, "
                f"{server.scheduler.num_workers} workers)",
                flush=True,
            )
    try:
        for server in servers[1:]:
            server.start()
        primary.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        for server in servers:
            server.close()
    return 0


def _submit_payload(args: argparse.Namespace) -> dict:
    circuit: dict = {}
    if args.qasm_file:
        with open(args.qasm_file) as stream:
            circuit["qasm"] = stream.read()
    else:
        circuit = {
            "benchmark": args.benchmark,
            "qubits": args.qubits,
            "seed": args.seed,
        }
    query: dict = {"type": args.query, "top": args.top}
    if args.query == "dd":
        query.update(
            active=args.active,
            recursions=args.recursions,
            zoom_width=args.zoom_width,
        )
    if args.query == "top_k" and args.shard_qubits is not None:
        query["shard_qubits"] = args.shard_qubits
    if args.query == "variational":
        query.update(
            iterations=args.iterations,
            layers=args.layers,
            degree=args.degree,
        )
    payload = {
        "circuit": circuit,
        "device_size": args.device_size,
        "max_subcircuits": args.max_subcircuits,
        "max_cuts": args.max_cuts,
        "method": args.method,
        "strategy": args.strategy,
        "sim_batch": _cli_sim_batch(args),
        "fusion_width": args.fusion_width,
        "query": query,
    }
    if args.tenant:
        payload["tenant"] = args.tenant
    if args.device:
        payload.update(
            device=args.device,
            shots=args.shots,
            trajectories=args.trajectories,
            noisy_method=args.noisy_method,
        )
    return payload


def _print_job_document(document: dict, as_json: bool) -> None:
    if as_json:
        print(json.dumps(document, indent=2))
        return
    state = document.get("state")
    print(f"job {document.get('job_id')}: {state}")
    timings = document.get("timings") or {}
    cache_hits = document.get("cache_hits") or {}
    for stage in ("cut", "evaluate", "query", "total"):
        if stage in timings:
            suffix = ""
            if stage in cache_hits:
                suffix = " (cache hit)" if cache_hits[stage] else " (computed)"
            print(f"  {stage}: {timings[stage]:.3f}s{suffix}")
    if document.get("error"):
        print(f"  error: {document['error']}")
    iterations = document.get("iterations") or []
    if iterations:
        latest = iterations[-1]
        print(
            f"  optimizer: {len(iterations)} iteration(s), "
            f"best <C> = {latest.get('best_cost', float('nan')):.4f}"
        )
    result = document.get("result")
    if result:
        if result.get("mode") == "variational":
            print(
                f"  variational: <C> {result['initial_cost']:.4f} -> "
                f"{result['best_cost']:.4f} over {result['iterations']} "
                f"SPSA iterations ({result['num_subcircuits']} subcircuits, "
                f"{result['num_cuts']} cuts)"
            )
            session = result.get("session") or {}
            if session:
                print(
                    "  reuse: "
                    f"{session.get('cut_cache_hits', 0)} cut hits, "
                    f"{session.get('subcircuit_evaluations', 0)} subcircuit "
                    "evaluations, "
                    f"{session.get('tensors_reused', 0)} tensors reused, "
                    f"{session.get('fusion_blocks_built', 0)}/"
                    f"{session.get('fusion_blocks_total', 0)} blocks rebuilt"
                )
        states = result.get("top_states") or result.get("solution_states") or []
        if states:
            print(f"  top states ({result.get('mode')}):")
            for entry in states:
                print(f"    |{entry['state']}>  p = {entry['probability']:.6f}")


def _command_submit(args: argparse.Namespace) -> int:
    from .service import ServiceClientError, request_json

    if bool(args.qasm_file) == bool(args.benchmark):
        print("error: pass either --benchmark/--qubits or --qasm-file",
              file=sys.stderr)
        return 2
    if args.benchmark and args.qubits is None:
        print("error: --benchmark needs --qubits", file=sys.stderr)
        return 2
    try:
        created = request_json(
            "POST", f"{args.url}/jobs", payload=_submit_payload(args)
        )
    except ServiceClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    job_id = created["job_id"]
    if not args.wait:
        if args.trace:
            print("note: --trace needs --wait; ignoring", file=sys.stderr)
        if args.json:
            print(json.dumps(created, indent=2))
        else:
            print(f"job {job_id}: {created['state']}")
        return 0

    import time as _time

    deadline = _time.monotonic() + args.timeout
    try:
        while True:
            document = request_json("GET", f"{args.url}/jobs/{job_id}")
            if document["state"] in ("done", "failed", "cancelled"):
                break
            if _time.monotonic() > deadline:
                print(f"error: job {job_id} still {document['state']!r} "
                      f"after {args.timeout}s", file=sys.stderr)
                return 1
            _time.sleep(0.05)
        if document["state"] != "done":
            _print_job_document(document, args.json)
            return 1
        result = request_json("GET", f"{args.url}/jobs/{job_id}/result")
    except ServiceClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    _print_job_document(result, args.json)
    if args.trace:
        try:
            traced = request_json("GET", f"{args.url}/jobs/{job_id}/trace")
        except ServiceClientError as error:
            print(f"error fetching trace: {error}", file=sys.stderr)
            return 1
        _print_trace_tree(traced["trace"], args.json)
    return 0


def _command_status(args: argparse.Namespace) -> int:
    from .service import ServiceClientError, request_json

    path = f"{args.url}/jobs/{args.job}"
    if args.result:
        path += "/result"
    try:
        document = request_json("GET", path)
    except ServiceClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    _print_job_document(document, args.json)
    return 0


def _command_jobs(args: argparse.Namespace) -> int:
    from .service import ServiceClientError, request_json

    try:
        listing = request_json("GET", f"{args.url}/jobs")
        stats = request_json("GET", f"{args.url}/stats")
    except ServiceClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({"jobs": listing["jobs"], "stats": stats}, indent=2))
        return 0
    for job in listing["jobs"]:
        spec = job.get("spec") or {}
        label = spec.get("benchmark") or "qasm"
        print(
            f"{job['job_id']}  {job['state']:<10} {label} "
            f"q={spec.get('qubits')} query={spec.get('query')} "
            f"tenant={job.get('tenant') or spec.get('tenant') or 'default'}"
        )
    by_state = stats["jobs"]["by_state"]
    cache = stats["cache"]
    print(
        f"{stats['jobs']['submitted']} jobs "
        f"({by_state.get('done', 0)} done, "
        f"{by_state.get('failed', 0)} failed); "
        f"cache hits cut={cache['stage_hits'].get('cut', 0)} "
        f"evaluate={cache['stage_hits'].get('evaluate', 0)}"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "cut": _command_cut,
        "run": _command_run,
        "dd": _command_dd,
        "devices": _command_devices,
        "serve": _command_serve,
        "submit": _command_submit,
        "status": _command_status,
        "jobs": _command_jobs,
    }
    try:
        return handlers[args.command](args)
    except CutSearchError as error:
        print(f"cut search failed: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
