"""Command-line interface: cut, evaluate and query circuits from a shell.

Examples
--------
Cut a 12-qubit supremacy circuit onto an 8-qubit device and show the plan::

    python -m repro cut --benchmark supremacy --qubits 12 --device-size 8

Run the full pipeline and print the top output states::

    python -m repro run --benchmark bv --qubits 11 --device-size 5 --top 5

Dynamic-definition query::

    python -m repro dd --benchmark bv --qubits 16 --device-size 10 \
        --active 2 --recursions 8

List virtual device presets::

    python -m repro devices
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .core import CutQC
from .cutting import CutSearchError
from .devices import DEVICE_PRESETS, get_device
from .library import BENCHMARKS, get_benchmark
from .metrics import chi_square_loss
from .sim import simulate_probabilities

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CutQC reproduction: cut large circuits onto small QPUs",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_circuit_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--benchmark", required=True, choices=sorted(BENCHMARKS),
            help="benchmark circuit family (paper §5.3)",
        )
        sub.add_argument("--qubits", type=int, required=True)
        sub.add_argument("--seed", type=int, default=0,
                         help="generator seed (randomized benchmarks)")
        sub.add_argument("--device-size", type=int, required=True,
                         help="max qubits per subcircuit (device size D)")
        sub.add_argument("--max-subcircuits", type=int, default=5)
        sub.add_argument("--max-cuts", type=int, default=10)
        sub.add_argument(
            "--method", choices=("auto", "mip", "heuristic"), default="auto",
            help="cut-search backend",
        )

    def add_execution_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--workers", type=int, default=1,
            help="processes for variant execution and kron reconstruction",
        )
        sub.add_argument(
            "--strategy", choices=("kron", "tensor_network", "auto"),
            default="auto", help="contraction strategy (default: auto)",
        )
        sub.add_argument(
            "--pool", metavar="SPEC",
            help="evaluate variants on a device pool; SPEC is a comma-"
                 "separated list of preset[:count], e.g. bogota:4,melbourne",
        )

    cut = commands.add_parser("cut", help="find cuts and print the plan")
    add_circuit_options(cut)

    run = commands.add_parser("run", help="cut + evaluate + FD query")
    add_circuit_options(run)
    add_execution_options(run)
    run.add_argument("--top", type=int, default=5,
                     help="print this many highest-probability states")
    run.add_argument("--device", choices=sorted(DEVICE_PRESETS),
                     help="evaluate subcircuits on this noisy virtual device"
                          " (default: exact statevector)")
    run.add_argument("--shots", type=int, default=8192)
    run.add_argument("--verify", action="store_true",
                     help="compare against statevector ground truth")

    dd = commands.add_parser("dd", help="cut + evaluate + DD query")
    add_circuit_options(dd)
    add_execution_options(dd)
    dd.add_argument("--active", type=int, default=2,
                    help="active qubits per recursion (memory cap)")
    dd.add_argument("--recursions", type=int, default=8)
    dd.add_argument("--shots", type=int, default=None,
                    help="shots per pool job (0 = exact; default: device "
                         "setting)")

    devices = commands.add_parser("devices", help="list device presets")
    del devices  # no extra options

    return parser


def _build_circuit(args: argparse.Namespace):
    kwargs = {}
    if args.benchmark in ("supremacy", "adder"):
        kwargs["seed"] = args.seed
    return get_benchmark(args.benchmark, args.qubits, **kwargs)


def _parse_pool(spec: str, seed: int):
    """Build a DevicePool from ``preset[:count],...`` (e.g. ``bogota:4``)."""
    from .devices.pool import DevicePool

    devices = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, _, count = entry.partition(":")
        copies = int(count) if count else 1
        if copies < 1:
            raise ValueError(f"pool entry {entry!r} has a non-positive count")
        for copy in range(copies):
            devices.append(get_device(name, seed=seed + copy))
    if not devices:
        raise ValueError(f"pool spec {spec!r} names no devices")
    return DevicePool(devices)


def _build_pipeline(args: argparse.Namespace, backend=None) -> CutQC:
    circuit = _build_circuit(args)
    pool = None
    pool_shots = None
    if getattr(args, "pool", None):
        pool = _parse_pool(args.pool, seed=args.seed)
        pool_shots = getattr(args, "shots", None)
    return CutQC(
        circuit,
        max_subcircuit_qubits=args.device_size,
        max_subcircuits=args.max_subcircuits,
        max_cuts=args.max_cuts,
        method=args.method,
        backend=backend,
        pool=pool,
        pool_shots=pool_shots,
        workers=getattr(args, "workers", 1),
        strategy=getattr(args, "strategy", "kron"),
        seed=args.seed,
    )


def _command_cut(args: argparse.Namespace) -> int:
    from .viz import cut_diagram

    pipeline = _build_pipeline(args)
    cut = pipeline.cut()
    print(cut.summary())
    if pipeline.solution is not None:
        print(f"search method: {pipeline.solution.method}")
        print(f"objective (Eq. 14 FLOPs): {pipeline.solution.objective:.3e}")
    print("cut positions (wire, index): "
          f"{[(c.wire, c.wire_index) for c in cut.cuts]}")
    print(cut_diagram(cut))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    backend = None
    if args.device and args.pool:
        print("error: pass either --device or --pool, not both", file=sys.stderr)
        return 2
    if args.device:
        device = get_device(args.device, seed=args.seed)
        if device.num_qubits < args.device_size:
            print(
                f"error: preset {args.device} has {device.num_qubits} qubits "
                f"but --device-size is {args.device_size}",
                file=sys.stderr,
            )
            return 2
        backend = device.backend(shots=args.shots)
    try:
        pipeline = _build_pipeline(args, backend=backend)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    cut = pipeline.cut()
    print(cut.summary())
    result = pipeline.fd_query(workers=args.workers)
    report = pipeline.execution_report
    if report is not None:
        line = (
            f"evaluation: {report.num_variants} variants -> "
            f"{report.num_unique_circuits} unique circuits "
            f"(dedup {report.dedup_ratio:.2f}x, {report.mode})"
        )
        if report.pool_makespan_seconds is not None:
            line += (
                f", quantum makespan {report.pool_makespan_seconds:.3f}s "
                f"vs {report.pool_serial_seconds:.3f}s serial"
            )
        print(line)
    stats = result.stats
    print(
        f"FD query [{stats.strategy}]: {stats.num_terms} Kronecker terms "
        f"({stats.num_skipped} skipped), {stats.elapsed_seconds:.3f}s, "
        f"{stats.workers} worker(s)"
    )
    from .viz import histogram

    probabilities = result.probabilities
    print(f"top {args.top} states:")
    print(histogram(probabilities, top=args.top))
    if args.verify:
        truth = simulate_probabilities(pipeline.circuit)
        loss = chi_square_loss(np.clip(probabilities, 0, None), truth)
        print(f"chi^2 vs statevector ground truth: {loss:.6f}")
    return 0


def _command_dd(args: argparse.Namespace) -> int:
    try:
        pipeline = _build_pipeline(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    cut = pipeline.cut()
    print(cut.summary())
    query = pipeline.dd_query(
        max_active_qubits=args.active, max_recursions=args.recursions
    )
    n = pipeline.circuit.num_qubits
    for recursion in query.recursions:
        zoomed = "".join(
            str(recursion.fixed[w]) if w in recursion.fixed else "?"
            for w in range(n)
        )
        print(
            f"recursion {recursion.index + 1}: zoomed={zoomed} "
            f"active={recursion.active} "
            f"max-bin p={recursion.probabilities.max():.4f}"
        )
    states = query.solution_states(threshold=0.25)
    if states:
        print("solution states (p >= 0.25):")
        for bits, probability in states[:5]:
            print(f"  |{bits}>  p = {probability:.6f}")
    else:
        print("no dominant solution state resolved "
              "(dense output or too few recursions)")
    return 0


def _command_devices(_: argparse.Namespace) -> int:
    for name in sorted(DEVICE_PRESETS):
        print(get_device(name).describe())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "cut": _command_cut,
        "run": _command_run,
        "dd": _command_dd,
        "devices": _command_devices,
    }
    try:
        return handlers[args.command](args)
    except CutSearchError as error:
        print(f"cut search failed: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
