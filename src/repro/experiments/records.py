"""Result records shared by the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["RuntimeRecord", "FidelityRecord", "DDRecord"]


@dataclass
class RuntimeRecord:
    """One configuration of the runtime experiment (paper Fig. 6 row)."""

    benchmark: str
    num_qubits: int
    device_size: int
    num_cuts: Optional[int]
    postprocess_seconds: Optional[float]
    simulation_seconds: Optional[float]
    status: str

    @property
    def speedup(self) -> Optional[float]:
        if (
            self.postprocess_seconds is None
            or self.simulation_seconds is None
            or self.postprocess_seconds <= 0
        ):
            return None
        return self.simulation_seconds / self.postprocess_seconds

    def row(self) -> tuple:
        speedup = self.speedup
        return (
            self.benchmark,
            self.num_qubits,
            self.device_size,
            "--" if self.num_cuts is None else self.num_cuts,
            "--" if self.postprocess_seconds is None else f"{self.postprocess_seconds:.3f}",
            "--" if self.simulation_seconds is None else f"{self.simulation_seconds:.3f}",
            "--" if speedup is None else f"{speedup:.1f}x",
            self.status,
        )


@dataclass
class FidelityRecord:
    """One configuration of the fidelity experiment (paper Fig. 11 row)."""

    benchmark: str
    num_qubits: int
    chi2_direct: float
    chi2_cutqc: Optional[float]
    status: str

    @property
    def reduction_percent(self) -> Optional[float]:
        if self.chi2_cutqc is None or self.chi2_direct <= 0:
            return None
        return 100.0 * (self.chi2_direct - self.chi2_cutqc) / self.chi2_direct

    def row(self) -> tuple:
        reduction = self.reduction_percent
        return (
            self.benchmark,
            self.num_qubits,
            f"{self.chi2_direct:.4f}",
            "--" if self.chi2_cutqc is None else f"{self.chi2_cutqc:.4f}",
            "--" if reduction is None else f"{reduction:+.0f}%",
        )


@dataclass
class DDRecord:
    """One benchmark's DD trace (paper Fig. 9 series)."""

    benchmark: str
    num_qubits: int
    chi2_by_recursion: List[float]
    cumulative_seconds: List[float]
    simulation_seconds: float
