"""Programmatic experiment runners (the paper's artifact workflow, A.5).

The artifact appendix ships two scripts — ``runtime_test.py`` and
``fidelity_test.py`` — whose parameters users adjust to customize runs
(A.7: size of QC, size/type of circuits, threads, devices).  This package
is the library form of those scripts; ``examples/runtime_test.py`` and
``examples/fidelity_test.py`` are thin front-ends, and the figure benches
under ``benchmarks/`` assert the same behaviours under pytest.
"""

from .fidelity import FidelityExperimentConfig, run_fidelity_experiment
from .records import DDRecord, FidelityRecord, RuntimeRecord
from .runtime import RuntimeExperimentConfig, run_runtime_experiment

__all__ = [
    "FidelityExperimentConfig",
    "run_fidelity_experiment",
    "DDRecord",
    "FidelityRecord",
    "RuntimeRecord",
    "RuntimeExperimentConfig",
    "run_runtime_experiment",
]
