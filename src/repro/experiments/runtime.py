"""The runtime experiment — the artifact appendix's ``runtime_test.py``.

Measures CutQC FD postprocessing against full statevector simulation for
a configurable set of benchmarks, circuit sizes and virtual QPU sizes
(paper Fig. 6 / §6.1).  The adjustable parameters mirror the artifact's
(A.7): device size, circuit sizes, benchmark types, worker count, and
cost budgets replacing "max system memory".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core import CutQC
from ..cutting import CutSearchError
from ..library import get_benchmark, valid_sizes
from ..postprocess import reconstruction_flops
from ..sim import simulate_probabilities
from .records import RuntimeRecord

__all__ = ["RuntimeExperimentConfig", "run_runtime_experiment"]


@dataclass
class RuntimeExperimentConfig:
    """Knobs of the runtime experiment."""

    benchmarks: Sequence[str] = ("supremacy", "aqft", "grover", "bv", "adder", "hwea")
    device_sizes: Sequence[int] = (6, 8, 10)
    #: explicit (benchmark, size) pairs; when empty, sizes are derived
    #: from ``size_range`` per device like the paper's sweeps.
    cases: Sequence[Tuple[str, int, int]] = ()
    size_multiplier: float = 2.0
    max_circuit_qubits: int = 15
    #: processes for variant execution and the kron reconstruction sweep
    workers: int = 1
    #: contraction strategy: "kron", "tensor_network", or "auto"
    strategy: str = "kron"
    #: when set, answer the FD query as a shard stream (2^s shards of
    #: 2^(n-s) entries) instead of materializing the full vector
    stream_shard_qubits: Optional[int] = None
    flop_budget: float = 2e9
    variant_budget: int = 25_000
    verify: bool = True
    supremacy_depth: int = 8
    seed: int = 0


def _sizes_for(config: RuntimeExperimentConfig, name: str, device: int) -> List[int]:
    low = device + 1
    high = min(int(config.size_multiplier * device) + 2, config.max_circuit_qubits)
    sizes = valid_sizes(name, low, high, even_only=True)
    picked: List[int] = []
    if sizes:
        picked.append(sizes[0])
        if len(sizes) > 1:
            picked.append(sizes[-1])
    return picked


def _circuit(config: RuntimeExperimentConfig, name: str, size: int):
    kwargs = (
        {"seed": config.seed, "depth": config.supremacy_depth}
        if name == "supremacy"
        else {}
    )
    return get_benchmark(name, size, **kwargs)


def _run_one(
    config: RuntimeExperimentConfig, name: str, size: int, device: int
) -> RuntimeRecord:
    circuit = _circuit(config, name, size)
    try:
        pipeline = CutQC(
            circuit,
            max_subcircuit_qubits=device,
            workers=config.workers,
            strategy=config.strategy,
        )
        cut = pipeline.cut()
    except CutSearchError:
        return RuntimeRecord(name, size, device, None, None, None, "uncuttable")
    if reconstruction_flops(cut) > config.flop_budget:
        return RuntimeRecord(
            name, size, device, cut.num_cuts, None, None, "too costly"
        )
    variants = sum(
        3 ** len(s.meas_lines) * 4 ** len(s.init_lines) for s in cut.subcircuits
    )
    if variants > config.variant_budget:
        return RuntimeRecord(
            name, size, device, cut.num_cuts, None, None, "too many variants"
        )
    pipeline.evaluate()
    if config.stream_shard_qubits is not None:
        shard_qubits = min(config.stream_shard_qubits, circuit.num_qubits)
        # Shards are verified concatenated (experiment circuits are small);
        # production use keeps them independent for bounded memory.
        probabilities = np.concatenate(
            [s.probabilities for s in pipeline.fd_stream(shard_qubits)]
        )
        postprocess_seconds = pipeline.stream_stats.elapsed_seconds
    else:
        result = pipeline.fd_query(workers=config.workers)
        probabilities = result.probabilities
        postprocess_seconds = result.stats.elapsed_seconds
    began = time.perf_counter()
    truth = simulate_probabilities(circuit)
    simulation_seconds = time.perf_counter() - began
    if config.verify and not np.allclose(probabilities, truth, atol=1e-6):
        return RuntimeRecord(
            name, size, device, cut.num_cuts, None, None, "MISMATCH"
        )
    return RuntimeRecord(
        benchmark=name,
        num_qubits=size,
        device_size=device,
        num_cuts=cut.num_cuts,
        postprocess_seconds=postprocess_seconds,
        simulation_seconds=simulation_seconds,
        status="ok",
    )


def run_runtime_experiment(
    config: Optional[RuntimeExperimentConfig] = None,
) -> List[RuntimeRecord]:
    """Run the sweep; returns one record per configuration."""
    config = config or RuntimeExperimentConfig()
    records: List[RuntimeRecord] = []
    if config.cases:
        for name, size, device in config.cases:
            records.append(_run_one(config, name, size, device))
        return records
    for device in config.device_sizes:
        for name in config.benchmarks:
            for size in _sizes_for(config, name, device):
                records.append(_run_one(config, name, size, device))
    return records
