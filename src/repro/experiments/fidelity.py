"""The fidelity experiment — the artifact appendix's ``fidelity_test.py``.

Compares direct execution on a large noisy device against CutQC through a
small one, reporting the paper's chi^2 percentage reduction (Fig. 11).
Devices, benchmarks, shots and mitigation are all configurable, mirroring
the artifact's customization points (A.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core import CutQC
from ..cutting import CutSearchError
from ..devices import VirtualDevice, bogota, johannesburg
from ..devices.mitigation import MitigatedBackend
from ..library import get_benchmark
from ..metrics import chi_square_loss
from ..sim import simulate_probabilities
from .records import FidelityRecord

__all__ = ["FidelityExperimentConfig", "run_fidelity_experiment"]

_DEFAULT_CASES: Tuple[Tuple[str, int], ...] = (
    ("bv", 6),
    ("bv", 8),
    ("adder", 6),
    ("hwea", 6),
    ("hwea", 8),
    ("supremacy", 6),
    ("aqft", 6),
)


@dataclass
class FidelityExperimentConfig:
    """Knobs of the fidelity experiment."""

    cases: Sequence[Tuple[str, int]] = _DEFAULT_CASES
    shots: int = 8192
    trajectories: int = 24
    seed: int = 7
    mitigate: bool = False
    large_device: Optional[VirtualDevice] = None
    small_device: Optional[VirtualDevice] = None
    supremacy_depth: int = 8


def _circuit(config: FidelityExperimentConfig, name: str, size: int):
    if name == "supremacy":
        return get_benchmark(name, size, seed=0, depth=config.supremacy_depth)
    if name == "adder":
        return get_benchmark(name, size, a_value=1, b_value=3)
    return get_benchmark(name, size)


def run_fidelity_experiment(
    config: Optional[FidelityExperimentConfig] = None,
) -> List[FidelityRecord]:
    """Run the comparison; returns one record per (benchmark, size)."""
    config = config or FidelityExperimentConfig()
    large = config.large_device or johannesburg(seed=config.seed)
    small = config.small_device or bogota(seed=config.seed)
    records: List[FidelityRecord] = []
    for name, size in config.cases:
        circuit = _circuit(config, name, size)
        truth = simulate_probabilities(circuit)
        direct = large.run(
            circuit, shots=config.shots, trajectories=config.trajectories
        )
        chi2_direct = chi_square_loss(direct, truth)
        if config.mitigate:
            backend = MitigatedBackend(
                small,
                shots=config.shots,
                trajectories=config.trajectories,
                seed=config.seed,
            )
        else:
            backend = small.backend(
                shots=config.shots, trajectories=config.trajectories
            )
        try:
            pipeline = CutQC(
                circuit,
                max_subcircuit_qubits=small.num_qubits,
                backend=backend,
            )
            probabilities = np.clip(pipeline.fd_query().probabilities, 0.0, None)
            total = probabilities.sum()
            if total > 0:
                probabilities = probabilities / total
            chi2_cutqc = chi_square_loss(probabilities, truth)
            status = "ok"
        except CutSearchError:
            chi2_cutqc = None
            status = "uncuttable"
        records.append(
            FidelityRecord(
                benchmark=name,
                num_qubits=size,
                chi2_direct=chi2_direct,
                chi2_cutqc=chi2_cutqc,
                status=status,
            )
        )
    return records
