"""Hardware-efficient ansatz (paper benchmark 6).

A layered variational circuit: per-qubit RY/RZ rotations followed by a
linear CX entangling chain, repeated ``layers`` times with a trailing
rotation layer.  The default (no explicit parameters) reproduces the
configuration the paper's Fig. 9 describes — an ansatz whose ideal output
has exactly *two* maximally-entangled solution states (a GHZ state): only
qubit 0 gets a non-trivial RY(pi/2), so the CX chain spreads the
superposition into (|0...0> + |1...1>)/sqrt(2).
"""

from __future__ import annotations

from typing import Optional, Sequence

import math

import numpy as np

from ..circuits import QuantumCircuit

__all__ = ["hwea", "hwea_parameter_count"]


def hwea_parameter_count(num_qubits: int, layers: int = 1) -> int:
    """Number of rotation parameters (2 per qubit per rotation layer)."""
    return 2 * num_qubits * (layers + 1)


def hwea(
    num_qubits: int,
    layers: int = 1,
    parameters: Optional[Sequence[float]] = None,
    seed: Optional[int] = None,
) -> QuantumCircuit:
    """Hardware-efficient ansatz with linear CX entanglement.

    Parameters
    ----------
    parameters:
        Flat sequence of ``hwea_parameter_count(num_qubits, layers)``
        angles, consumed as (RY, RZ) pairs qubit-by-qubit, layer-by-layer.
        When omitted, the GHZ configuration described above is used (and
        ``seed`` randomizes only the inert RZ phases so circuits are not
        degenerate).
    """
    if num_qubits < 2:
        raise ValueError("hwea needs at least 2 qubits")
    if layers < 1:
        raise ValueError("layers must be positive")

    if parameters is not None:
        expected = hwea_parameter_count(num_qubits, layers)
        angles = [float(p) for p in parameters]
        if len(angles) != expected:
            raise ValueError(f"expected {expected} parameters, got {len(angles)}")
    else:
        rng = np.random.default_rng(seed if seed is not None else 7)
        angles = []
        for layer in range(layers + 1):
            for qubit in range(num_qubits):
                if layer == 0 and qubit == 0:
                    ry_angle = math.pi / 2.0  # open the GHZ superposition
                else:
                    ry_angle = 0.0
                rz_angle = float(rng.uniform(0, 2 * math.pi)) if layer == 0 else 0.0
                angles.extend([ry_angle, rz_angle])

    circuit = QuantumCircuit(num_qubits)
    cursor = 0
    for layer in range(layers + 1):
        for qubit in range(num_qubits):
            ry_angle, rz_angle = angles[cursor], angles[cursor + 1]
            cursor += 2
            if ry_angle:
                circuit.ry(ry_angle, qubit)
            if rz_angle:
                circuit.rz(rz_angle, qubit)
        if layer < layers:
            for qubit in range(num_qubits - 1):
                circuit.cx(qubit, qubit + 1)
    return circuit
