"""The paper's six benchmark circuits (§5.3) behind one registry.

Each generator enforces the paper's validity constraints on circuit size
(near-square grids for supremacy, odd sizes for Grover, even for adder and
the H-layer benchmarks), and :func:`valid_sizes` reports which sizes a
sweep may use — mirroring the gaps in the paper's Fig. 6 curves.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..circuits import QuantumCircuit
from .adder import adder, adder_register_width, adder_solution
from .aqft import aqft, default_approximation_degree, qft
from .bv import bv, bv_solution
from .grover import grover, grover_data_qubits, mcx_vchain, mcz
from .hwea import hwea, hwea_parameter_count
from .supremacy import grid_shape, supremacy, supremacy_grid, supremacy_valid_sizes
from .qaoa import maxcut_cost, qaoa_maxcut, random_regular_graph, ring_graph

__all__ = [
    "BENCHMARKS",
    "get_benchmark",
    "valid_sizes",
    "adder",
    "adder_register_width",
    "adder_solution",
    "aqft",
    "qft",
    "default_approximation_degree",
    "bv",
    "bv_solution",
    "grover",
    "grover_data_qubits",
    "mcx_vchain",
    "mcz",
    "hwea",
    "hwea_parameter_count",
    "supremacy",
    "supremacy_grid",
    "supremacy_valid_sizes",
    "grid_shape",
    "maxcut_cost",
    "qaoa_maxcut",
    "random_regular_graph",
    "ring_graph",
]

BENCHMARKS = ("supremacy", "aqft", "grover", "bv", "adder", "hwea", "qaoa")

_GENERATORS: Dict[str, Callable[..., QuantumCircuit]] = {
    "supremacy": supremacy,
    "aqft": aqft,
    "grover": grover,
    "bv": bv,
    "adder": adder,
    "hwea": hwea,
    "qaoa": qaoa_maxcut,
}


def get_benchmark(name: str, num_qubits: int, **kwargs) -> QuantumCircuit:
    """Build benchmark ``name`` at ``num_qubits`` qubits.

    Extra keyword arguments are forwarded to the generator (e.g. ``depth``
    and ``seed`` for supremacy, ``iterations`` for Grover).
    """
    try:
        generator = _GENERATORS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; expected one of {BENCHMARKS}"
        ) from None
    return generator(num_qubits, **kwargs)


def _size_ok(name: str, num_qubits: int) -> bool:
    if num_qubits < 2:
        return False
    if name == "supremacy":
        try:
            grid_shape(num_qubits)
        except ValueError:
            return False
        return True
    if name == "grover":
        return num_qubits >= 3 and num_qubits % 2 == 1
    if name == "adder":
        return num_qubits >= 4 and num_qubits % 2 == 0
    if name == "qaoa":
        # The default ring graph needs at least 3 nodes.
        return num_qubits >= 3
    if name in ("aqft", "bv", "hwea"):
        # The paper examines even sizes for these three (§6.1); the
        # generators themselves accept any size >= 2.
        return True
    return False


def valid_sizes(name: str, low: int, high: int, even_only: bool = False) -> List[int]:
    """Benchmark sizes in ``[low, high]`` honoring the paper's constraints."""
    name = name.lower()
    if name not in _GENERATORS:
        raise ValueError(f"unknown benchmark {name!r}; expected one of {BENCHMARKS}")
    sizes = [n for n in range(low, high + 1) if _size_ok(name, n)]
    if even_only and name in ("aqft", "bv", "hwea"):
        sizes = [n for n in sizes if n % 2 == 0]
    return sizes
