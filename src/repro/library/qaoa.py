"""QAOA MaxCut circuits — an extension workload beyond the paper's six.

The paper motivates CutQC with near-term variational applications (§5.3
includes HWEA); QAOA is the canonical one, and its structure makes it an
interesting cutting workload: the cost layer applies one RZZ per *graph
edge*, so the circuit's cuttability directly mirrors the cuttability of
the problem graph.  Random d-regular graphs give supremacy-like density;
ring graphs cut like BV.

``qaoa_maxcut`` returns the standard p-layer ansatz

    |psi(gamma, beta)> = prod_l  U_B(beta_l) U_C(gamma_l)  H^{(x)n} |0>

with U_C = prod_{(i,j) in E} RZZ(2*gamma) and U_B = prod_i RX(2*beta).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..circuits import QuantumCircuit

__all__ = ["qaoa_maxcut", "maxcut_cost", "random_regular_graph", "ring_graph"]


def random_regular_graph(
    num_qubits: int, degree: int = 3, seed: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Edges of a random d-regular graph on ``num_qubits`` nodes."""
    if degree >= num_qubits:
        raise ValueError("degree must be smaller than the node count")
    if (degree * num_qubits) % 2:
        raise ValueError("degree * num_qubits must be even")
    graph = nx.random_regular_graph(degree, num_qubits, seed=seed)
    return [(min(a, b), max(a, b)) for a, b in graph.edges()]


def ring_graph(num_qubits: int) -> List[Tuple[int, int]]:
    """Edges of a ring — the easiest QAOA topology to cut."""
    if num_qubits < 3:
        raise ValueError("a ring needs at least 3 nodes")
    return [(i, (i + 1) % num_qubits) for i in range(num_qubits)]


def qaoa_maxcut(
    num_qubits: int,
    edges: Optional[Sequence[Tuple[int, int]]] = None,
    layers: int = 1,
    parameters: Optional[Sequence[float]] = None,
    seed: Optional[int] = None,
) -> QuantumCircuit:
    """p-layer QAOA MaxCut ansatz on the given (or a ring) graph.

    ``parameters`` is ``[gamma_1, beta_1, ..., gamma_p, beta_p]``; when
    omitted, angles are drawn uniformly from (0, pi) with ``seed``.
    """
    if layers < 1:
        raise ValueError("layers must be positive")
    edge_list = list(edges) if edges is not None else ring_graph(num_qubits)
    for a, b in edge_list:
        if not (0 <= a < num_qubits and 0 <= b < num_qubits) or a == b:
            raise ValueError(f"invalid edge ({a}, {b})")
    if parameters is None:
        rng = np.random.default_rng(seed if seed is not None else 17)
        parameters = list(rng.uniform(0.1, np.pi - 0.1, size=2 * layers))
    else:
        parameters = [float(p) for p in parameters]
        if len(parameters) != 2 * layers:
            raise ValueError(
                f"expected {2 * layers} parameters, got {len(parameters)}"
            )

    circuit = QuantumCircuit(num_qubits)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for layer in range(layers):
        gamma, beta = parameters[2 * layer], parameters[2 * layer + 1]
        for a, b in edge_list:
            circuit.rzz(2.0 * gamma, a, b)
        for qubit in range(num_qubits):
            circuit.rx(2.0 * beta, qubit)
    return circuit


def maxcut_cost(
    probabilities: np.ndarray, edges: Sequence[Tuple[int, int]], num_qubits: int
) -> float:
    """Expected cut value <C> of a distribution over bitstrings."""
    probabilities = np.asarray(probabilities, dtype=float)
    if probabilities.size != 1 << num_qubits:
        raise ValueError(
            f"distribution of size {probabilities.size} does not match "
            f"{num_qubits} qubits"
        )
    total = 0.0
    for index, probability in enumerate(probabilities):
        if probability <= 0.0:
            continue
        cut = 0
        for a, b in edges:
            bit_a = (index >> (num_qubits - 1 - a)) & 1
            bit_b = (index >> (num_qubits - 1 - b)) & 1
            cut += bit_a != bit_b
        total += probability * cut
    return total
