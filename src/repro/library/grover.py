"""Grover search circuits (paper benchmark 3).

Following the paper's Qiskit-based construction, a circuit on ``n`` total
qubits (``n`` odd) splits into ``d = (n + 1) // 2`` data qubits and
``d - 1`` ancilla qubits used by the V-chain decomposition of the
multi-controlled-Z in the oracle and diffusion operators.  The oracle
marks the all-ones data state.

Multi-qubit primitives are decomposed down to 1-/2-qubit gates on the fly
(Toffoli via the standard 6-CX network), so the emitted circuits are
directly cuttable.
"""

from __future__ import annotations

from typing import Sequence

from ..circuits import QuantumCircuit

__all__ = ["grover", "grover_data_qubits", "mcz", "mcx_vchain"]


def mcx_vchain(
    circuit: QuantumCircuit,
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int],
) -> QuantumCircuit:
    """Multi-controlled X via the V-chain of Toffolis (k-2 ancillas)."""
    controls = list(controls)
    k = len(controls)
    if k == 0:
        return circuit.x(target)
    if k == 1:
        return circuit.cx(controls[0], target)
    if k == 2:
        return circuit.ccx(controls[0], controls[1], target)
    needed = k - 2
    if len(ancillas) < needed:
        raise ValueError(f"{k}-controlled X needs {needed} ancillas, got {len(ancillas)}")
    chain = list(ancillas[:needed])
    circuit.ccx(controls[0], controls[1], chain[0])
    for i in range(1, needed):
        circuit.ccx(controls[i + 1], chain[i - 1], chain[i])
    circuit.ccx(controls[k - 1], chain[-1], target)
    for i in reversed(range(1, needed)):
        circuit.ccx(controls[i + 1], chain[i - 1], chain[i])
    circuit.ccx(controls[0], controls[1], chain[0])
    return circuit


def mcz(
    circuit: QuantumCircuit,
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int],
) -> QuantumCircuit:
    """Multi-controlled Z: conjugate the V-chain MCX by Hadamards."""
    controls = list(controls)
    if not controls:
        return circuit.z(target)
    if len(controls) == 1:
        return circuit.cz(controls[0], target)
    if len(controls) == 2:
        return circuit.ccz(controls[0], controls[1], target)
    circuit.h(target)
    mcx_vchain(circuit, controls, target, ancillas)
    circuit.h(target)
    return circuit


def grover_data_qubits(num_qubits: int) -> int:
    """Number of data qubits for an ``num_qubits``-qubit Grover circuit.

    The circuit has ``d`` data qubits plus the ``d - 3`` ancillas its
    V-chain multi-controlled-Z consumes, so ``num_qubits = 2d - 3`` and
    only odd total sizes are valid — the same odd-only constraint the
    paper's Qiskit construction has (every ancilla wire actually carries
    gates, keeping the circuit fully connected for the cut model).
    """
    if num_qubits < 3 or num_qubits % 2 == 0:
        raise ValueError(
            f"Grover circuits need an odd qubit count >= 3, got {num_qubits}"
        )
    return (num_qubits + 3) // 2


def grover(num_qubits: int, iterations: int = 1) -> QuantumCircuit:
    """Grover search marking the all-ones state of the data register.

    Data qubits are ``0 .. d-1``; ancillas are ``d .. n-1`` and return to
    |0> after every oracle/diffusion application.
    """
    if iterations < 1:
        raise ValueError("iterations must be positive")
    data = grover_data_qubits(num_qubits)
    ancillas = list(range(data, num_qubits))
    circuit = QuantumCircuit(num_qubits)
    for qubit in range(data):
        circuit.h(qubit)
    for _ in range(iterations):
        # Oracle: flip the phase of |1...1> on the data register.
        mcz(circuit, list(range(data - 1)), data - 1, ancillas)
        # Diffusion: invert about the mean.
        for qubit in range(data):
            circuit.h(qubit)
            circuit.x(qubit)
        mcz(circuit, list(range(data - 1)), data - 1, ancillas)
        for qubit in range(data):
            circuit.x(qubit)
            circuit.h(qubit)
    return circuit
