"""Bernstein–Vazirani circuits (paper benchmark 4, and Figures 1 and 7).

``bv(n)`` uses ``n - 1`` data qubits plus one oracle ancilla (the last
qubit).  The hidden string defaults to all ones, which keeps the circuit
fully connected — a requirement of the cut model (a zero bit would leave
its wire without any multiqubit gate).  A trailing Hadamard returns the
ancilla to |1>, so the ideal output is the single deterministic state
``s + "1"`` — the "solution state" the DD query of Fig. 7 locates.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..circuits import QuantumCircuit

__all__ = ["bv", "bv_solution"]


def _check_string(num_qubits: int, hidden_string: Optional[Sequence[int]]):
    data_qubits = num_qubits - 1
    if hidden_string is None:
        bits = [1] * data_qubits
    else:
        bits = [int(b) for b in hidden_string]
        if len(bits) != data_qubits:
            raise ValueError(
                f"hidden string of length {len(bits)} does not match "
                f"{data_qubits} data qubits"
            )
        if any(b not in (0, 1) for b in bits):
            raise ValueError("hidden string must be binary")
    return bits


def bv(num_qubits: int, hidden_string: Optional[Sequence[int]] = None) -> QuantumCircuit:
    """Bernstein–Vazirani on ``num_qubits`` total qubits (ancilla last)."""
    if num_qubits < 2:
        raise ValueError("BV needs at least 2 qubits (1 data + 1 ancilla)")
    bits = _check_string(num_qubits, hidden_string)
    if not any(bits):
        raise ValueError("hidden string must contain at least one 1 bit")
    ancilla = num_qubits - 1
    circuit = QuantumCircuit(num_qubits)
    for qubit in range(num_qubits - 1):
        circuit.h(qubit)
    circuit.x(ancilla).h(ancilla)
    for qubit, bit in enumerate(bits):
        if bit:
            circuit.cx(qubit, ancilla)
    for qubit in range(num_qubits - 1):
        circuit.h(qubit)
    circuit.h(ancilla)  # return the |-> ancilla to a deterministic |1>
    return circuit


def bv_solution(num_qubits: int, hidden_string: Optional[Sequence[int]] = None) -> str:
    """The deterministic ideal output bitstring of :func:`bv`."""
    bits = _check_string(num_qubits, hidden_string)
    return "".join(str(b) for b in bits) + "1"
