"""Cuccaro ripple-carry adder (paper benchmark 5).

``adder(n)`` sums two ``w``-bit registers where ``n = 2w + 2`` (one
carry-in ancilla plus a carry-out qubit), so only even total sizes are
valid — exactly the paper's constraint.  Register values are encoded with
X gates, and the ideal output is the single deterministic state holding
``a + b``, which makes the adder a convenient fidelity benchmark.

Qubit layout (LSB first): ``cin, b0, a0, b1, a1, ..., cout``.  After the
circuit, ``b`` holds the sum bits and ``cout`` the final carry; ``a`` and
``cin`` are restored.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..circuits import QuantumCircuit

__all__ = ["adder", "adder_register_width", "adder_solution"]


def adder_register_width(num_qubits: int) -> int:
    """Register width ``w`` for an ``n = 2w + 2`` qubit adder."""
    if num_qubits < 4 or num_qubits % 2:
        raise ValueError(
            f"adder circuits need an even qubit count >= 4, got {num_qubits}"
        )
    return (num_qubits - 2) // 2


def _maj(circuit: QuantumCircuit, c: int, b: int, a: int) -> None:
    circuit.cx(a, b)
    circuit.cx(a, c)
    circuit.ccx(c, b, a)


def _uma(circuit: QuantumCircuit, c: int, b: int, a: int) -> None:
    circuit.ccx(c, b, a)
    circuit.cx(a, c)
    circuit.cx(c, b)


def _register_values(
    width: int, a_value: Optional[int], b_value: Optional[int], seed: Optional[int]
) -> tuple:
    limit = 1 << width
    if a_value is None or b_value is None:
        rng = np.random.default_rng(seed if seed is not None else 2021)
        if a_value is None:
            a_value = int(rng.integers(limit))
        if b_value is None:
            b_value = int(rng.integers(limit))
    if not 0 <= a_value < limit or not 0 <= b_value < limit:
        raise ValueError(f"register values must be in [0, {limit})")
    return a_value, b_value


def adder(
    num_qubits: int,
    a_value: Optional[int] = None,
    b_value: Optional[int] = None,
    seed: Optional[int] = None,
) -> QuantumCircuit:
    """Cuccaro ripple-carry adder computing ``b := a + b``."""
    width = adder_register_width(num_qubits)
    a_value, b_value = _register_values(width, a_value, b_value, seed)

    cin = 0
    b_qubits = [1 + 2 * i for i in range(width)]
    a_qubits = [2 + 2 * i for i in range(width)]
    cout = num_qubits - 1

    circuit = QuantumCircuit(num_qubits)
    for bit in range(width):
        if (a_value >> bit) & 1:
            circuit.x(a_qubits[bit])
        if (b_value >> bit) & 1:
            circuit.x(b_qubits[bit])

    carries = [cin] + a_qubits[:-1]
    for i in range(width):
        _maj(circuit, carries[i], b_qubits[i], a_qubits[i])
    circuit.cx(a_qubits[-1], cout)
    for i in reversed(range(width)):
        _uma(circuit, carries[i], b_qubits[i], a_qubits[i])
    return circuit


def adder_solution(
    num_qubits: int,
    a_value: Optional[int] = None,
    b_value: Optional[int] = None,
    seed: Optional[int] = None,
) -> str:
    """The deterministic ideal output bitstring of :func:`adder`.

    The string is in wire order (qubit 0 first), matching the package's
    basis-state convention.
    """
    width = adder_register_width(num_qubits)
    a_value, b_value = _register_values(width, a_value, b_value, seed)
    total = a_value + b_value
    bits = ["0"] * num_qubits
    for bit in range(width):
        bits[1 + 2 * bit] = str((total >> bit) & 1)  # sum bit in b register
        bits[2 + 2 * bit] = str((a_value >> bit) & 1)  # a register restored
    bits[num_qubits - 1] = str((total >> width) & 1)  # carry out
    return "".join(bits)
