"""Approximate Quantum Fourier Transform (paper benchmark 2).

The exact QFT applies, after the Hadamard on qubit ``i``, controlled-phase
rotations ``CP(pi / 2^(j-i))`` from every later qubit ``j``.  The AQFT
drops rotations smaller than a threshold — Barenco et al. show that a
degree of about ``log2(n) + 2`` preserves accuracy while shortening the
circuit, which is why the paper benchmarks AQFT rather than full QFT on
NISQ devices.

The final swap network is omitted (it only relabels output bits and would
add 2-qubit gates with no computational content), matching the reference
CutQC benchmark generator.
"""

from __future__ import annotations

import math
from typing import Optional

from ..circuits import QuantumCircuit

__all__ = ["aqft", "qft", "default_approximation_degree"]


def default_approximation_degree(num_qubits: int) -> int:
    """The ``log2(n) + 2`` rule of thumb from Barenco et al."""
    return max(1, math.ceil(math.log2(num_qubits)) + 2) if num_qubits > 1 else 1


def aqft(num_qubits: int, approximation_degree: Optional[int] = None) -> QuantumCircuit:
    """AQFT keeping controlled phases ``CP(pi/2^k)`` with ``k < degree``."""
    if num_qubits < 1:
        raise ValueError("num_qubits must be positive")
    degree = (
        default_approximation_degree(num_qubits)
        if approximation_degree is None
        else approximation_degree
    )
    if degree < 1:
        raise ValueError("approximation_degree must be >= 1")
    circuit = QuantumCircuit(num_qubits)
    for target in range(num_qubits):
        circuit.h(target)
        for control in range(target + 1, num_qubits):
            distance = control - target
            if distance < degree:
                circuit.cp(math.pi / (1 << distance), control, target)
    return circuit


def qft(num_qubits: int) -> QuantumCircuit:
    """Exact QFT (no rotation dropped, no final swaps)."""
    return aqft(num_qubits, approximation_degree=num_qubits)
