"""2-D random "supremacy" circuits (paper benchmark 1, adapted from Boixo).

Qubits sit on a ``rows x cols`` grid.  After an initial Hadamard layer,
each cycle applies one pattern of non-overlapping CZ gates (alternating
horizontal/vertical brick patterns) and random single-qubit gates from
{sqrt(X), sqrt(Y), T} on the idle qubits, with no immediate repetition per
qubit and T as each qubit's first random gate — the structure that makes
these circuits produce dense (Porter–Thomas-like) output and makes them
hard to cut.

The paper evaluates only *near-square* shapes (the two dimensions differing
by at most 2), which is what :func:`supremacy` selects.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..circuits import QuantumCircuit

__all__ = ["supremacy_grid", "supremacy", "supremacy_valid_sizes", "grid_shape"]

_RANDOM_1Q = ("t", "sx", "sy")


#: Boixo et al.'s 8-configuration rotation: each grid coupling activates
#: roughly once per 8 cycles, which is what keeps near-square supremacy
#: circuits cuttable with a handful of cuts (paper §5.3).
_CONFIGS = ("h0", "h1", "v0", "v1", "h2", "h3", "v2", "v3")


def _cz_layer(rows: int, cols: int, cycle: int) -> List[Tuple[int, int]]:
    """Non-overlapping CZ pairs for one cycle (8-configuration rotation)."""
    config = _CONFIGS[cycle % len(_CONFIGS)]
    variant = int(config[1])
    pairs: List[Tuple[int, int]] = []
    if config[0] == "h":
        for r in range(rows):
            for c in range(cols - 1):
                if c % 2 == variant % 2 and r % 2 == variant // 2:
                    pairs.append((r * cols + c, r * cols + c + 1))
    else:
        for r in range(rows - 1):
            for c in range(cols):
                if r % 2 == variant % 2 and c % 2 == variant // 2:
                    pairs.append((r * cols + c, (r + 1) * cols + c))
    return pairs


def supremacy_grid(
    rows: int, cols: int, depth: int = 10, seed: Optional[int] = None
) -> QuantumCircuit:
    """Random circuit on a ``rows x cols`` grid with ``depth`` CZ cycles."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError("grid must contain at least 2 qubits")
    if depth < 1:
        raise ValueError("depth must be positive")
    rng = np.random.default_rng(seed)
    num_qubits = rows * cols
    circuit = QuantumCircuit(num_qubits)
    for qubit in range(num_qubits):
        circuit.h(qubit)

    last_1q = ["h"] * num_qubits
    for cycle in range(depth):
        pairs = _cz_layer(rows, cols, cycle)
        busy = {q for pair in pairs for q in pair}
        for a, b in pairs:
            circuit.cz(a, b)
        for qubit in range(num_qubits):
            if qubit in busy:
                continue
            if last_1q[qubit] == "h":
                choice = "t"  # first random gate on each qubit is T
            else:
                options = [g for g in _RANDOM_1Q if g != last_1q[qubit]]
                choice = options[rng.integers(len(options))]
            circuit.add(choice, (qubit,))
            last_1q[qubit] = choice
    return circuit


def grid_shape(num_qubits: int, max_aspect_delta: int = 2) -> Tuple[int, int]:
    """Pick a near-square ``rows x cols`` factorization of ``num_qubits``.

    Raises ``ValueError`` if no factor pair with ``|rows - cols| <=
    max_aspect_delta`` exists (matching the paper, not every size is a
    valid supremacy benchmark).
    """
    best: Optional[Tuple[int, int]] = None
    for rows in range(1, int(num_qubits**0.5) + 1):
        if num_qubits % rows:
            continue
        cols = num_qubits // rows
        if abs(rows - cols) <= max_aspect_delta:
            if best is None or abs(rows - cols) < abs(best[0] - best[1]):
                best = (rows, cols)
    if best is None:
        raise ValueError(
            f"{num_qubits} qubits has no near-square grid factorization"
        )
    return best


def supremacy(
    num_qubits: int, depth: int = 10, seed: Optional[int] = None
) -> QuantumCircuit:
    """Near-square supremacy circuit with ``num_qubits`` qubits."""
    rows, cols = grid_shape(num_qubits)
    return supremacy_grid(rows, cols, depth=depth, seed=seed)


def supremacy_valid_sizes(low: int, high: int) -> List[int]:
    """Sizes in ``[low, high]`` admitting a near-square grid."""
    sizes = []
    for n in range(max(2, low), high + 1):
        try:
            grid_shape(n)
        except ValueError:
            continue
        sizes.append(n)
    return sizes
