"""Typed failure taxonomy shared by the pool, scheduler and store layers.

The fault-tolerance contract (see ``docs/robustness.md``) hinges on one
distinction: **transient** faults are worth retrying (the operation is
pure/idempotent and the trigger — a killed worker, a flaky filesystem —
may not recur), while **permanent** faults must surface immediately
(retrying a deterministic error only burns the budget).

* :class:`TransientFault` — base class for retryable failures.  The
  scheduler's per-stage retry policy also treats raw :class:`OSError`
  as transient (store/journal IO), see :func:`is_transient`.
* :class:`WorkerCrashError` — a pool worker died (or was killed as
  hung) while holding a task and the pool could not finish the task
  within its attempt budget *for reasons other than the task itself*.
* :class:`PoisonedTaskError` — one task killed its worker on every
  attempt; the task is quarantined.  Permanent: it fails only the job
  that submitted it, never the pool.
* :class:`PoolUnrecoverableError` — the pool's worker-respawn budget is
  exhausted (or it was torn down underneath its callers).  Not retried
  against the pool; the scheduler reacts by degrading to serial
  in-process evaluation instead.
* :class:`ChaosInjectedError` — raised by ``repro.chaos`` ``task_error``
  rules; permanent by design so injected logic errors are visibly
  distinct from injected infrastructure faults.
"""

from __future__ import annotations

__all__ = [
    "ChaosInjectedError",
    "PoisonedTaskError",
    "PoolUnrecoverableError",
    "TransientFault",
    "WorkerCrashError",
    "is_transient",
]


class TransientFault(RuntimeError):
    """A failure that is expected to succeed on retry."""


class WorkerCrashError(TransientFault):
    """A pool worker died/hung under a task, beyond the task's budget."""


class PoisonedTaskError(RuntimeError):
    """A task that killed its worker ``K`` times; quarantined."""


class PoolUnrecoverableError(RuntimeError):
    """The worker pool cannot be healed by respawning."""


class ChaosInjectedError(RuntimeError):
    """A deterministic logic error injected by ``repro.chaos``."""


def is_transient(error: BaseException) -> bool:
    """Whether the scheduler's staged-retry policy should retry.

    ``OSError`` covers store/journal IO (including injected
    ``store_ioerror`` faults); :class:`PoolUnrecoverableError` is
    *excluded* because its remedy is degradation, not repetition.
    """
    if isinstance(error, (PoolUnrecoverableError, PoisonedTaskError)):
        return False
    return isinstance(error, (TransientFault, OSError))
