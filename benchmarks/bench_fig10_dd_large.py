"""Figure 10: DD postprocessing runtime far beyond the simulation limit.

Two parts:

* the paper's sweep — circuits of 30-64 qubits cut onto 20/30-qubit
  device budgets with synthetic subcircuit outputs, one DD recursion at a
  2^12-bin definition (2^35 in the paper; the definition is a parameter);

* the engine benchmark — a *real* (exactly evaluated) 41-qubit BV
  circuit, subcircuits <= 17 qubits, queried with the refactored DD
  engine (incremental collapse cache + heap frontier + batched zoom)
  against the pre-refactor path (per-recursion full re-collapse + linear
  bin scan), locating the solution state without ever materializing the
  2^41 vector.  Results — recursion latency, cache hit rate, measured
  speedup, and the streaming-FD shard of the solution region — are
  written to ``results/BENCH_dd.json`` for the CI perf trajectory.
"""

import json
import os
import time


from repro import evaluate_subcircuit
from repro.cutting import CutSearchError, find_cuts
from repro.library import bv, bv_solution, get_benchmark

from conftest import RESULTS_DIR, interleaved_active_order, report
from repro.postprocess import (
    DynamicDefinitionQuery,
    PrecomputedTensorProvider,
    RandomTensorProvider,
    StreamingReconstructor,
)
from repro.postprocess.engine import ContractionEngine

_DEFINITION_QUBITS = 12
_CASES = (
    ("bv", 32, {}),
    ("bv", 48, {}),
    ("bv", 64, {}),
    ("hwea", 40, {}),
    ("hwea", 64, {}),
    ("adder", 40, {"seed": 0}),
    ("supremacy", 30, {"seed": 0, "depth": 8}),
    ("supremacy", 42, {"seed": 0, "depth": 8}),
    ("aqft", 36, {}),
)
_DEVICES = (20, 30)

# Engine-benchmark knobs (env-cappable for CI smoke runs).
_DD_QUBITS = int(os.environ.get("REPRO_BENCH_DD_QUBITS", "41"))
_DD_DEVICE = int(os.environ.get("REPRO_BENCH_DD_DEVICE", "17"))
_DD_RECURSIONS = int(os.environ.get("REPRO_BENCH_DD_RECURSIONS", "33"))
_DD_ZOOM_WIDTH = int(os.environ.get("REPRO_BENCH_DD_ZOOM_WIDTH", "8"))
#: Assertion floor for the measured speedup (reference machine: >10x).
#: CI smoke runs lower it — a loaded shared runner measures timing noise,
#: not code regressions.
_DD_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_DD_MIN_SPEEDUP", "3.0"))


def _one(name, size, kwargs, device):
    circuit = get_benchmark(name, size, **kwargs)
    if device >= size:
        return None
    try:
        solution = find_cuts(circuit, device, method="heuristic", max_cuts=8)
    except CutSearchError:
        return (name, size, device, "--", "--", "uncuttable")
    cut = solution.apply(circuit)
    provider = RandomTensorProvider(cut, seed=3)
    query = DynamicDefinitionQuery(
        provider,
        max_active_qubits=_DEFINITION_QUBITS,
        active_order=interleaved_active_order(cut),
    )
    began = time.perf_counter()
    try:
        query.step()
    except MemoryError:
        return (name, size, device, cut.num_cuts, "--", "tensor too large")
    elapsed = time.perf_counter() - began
    return (name, size, device, cut.num_cuts, f"{elapsed:.3f}", "ok")


def _sweep():
    rows = []
    for device in _DEVICES:
        for name, size, kwargs in _CASES:
            row = _one(name, size, kwargs, device)
            if row is not None:
                rows.append(row)
    return rows


def test_fig10_dd_beyond_simulation_limit(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(
        "fig10",
        f"Fig. 10 — one DD recursion (definition 2^{_DEFINITION_QUBITS} "
        "bins), synthetic subcircuit outputs",
        ["benchmark", "qubits", "device", "cuts", "DD recursion s", "status"],
        rows,
    )
    ok = [row for row in rows if row[5] == "ok"]
    assert ok, "some configurations must run"
    # Largest circuits sampled far beyond classical simulation reach.
    assert max(row[1] for row in ok) >= 48
    # Larger devices never need *more* cuts for the same circuit.
    for name, size, kwargs in _CASES:
        cuts = {
            row[2]: row[3]
            for row in ok
            if row[0] == name and row[1] == size and row[3] != "--"
        }
        if len(cuts) == 2:
            assert cuts[30] <= cuts[20], (name, size, cuts)


# ----------------------------------------------------------------------
# Engine benchmark: refactored DD vs the pre-refactor path, real tensors
# ----------------------------------------------------------------------

class _PreRefactorQuery(DynamicDefinitionQuery):
    """The seed implementation's bin frontier: an O(bins) linear scan
    (building each candidate's assignment dict) instead of the heap."""

    def _pop_bin(self):
        best = None
        total = self.provider.num_qubits
        for candidate in self.bins:
            if candidate.zoomed:
                continue
            if len(candidate.assignment) >= total:
                continue
            if best is None or candidate.probability > best.probability:
                best = candidate
        return best

    _peek_bin = _pop_bin


def test_fig10_dd_zoom_cache_speedup():
    """>= 40-qubit sparse circuit, subcircuits <= 25 qubits: the solution
    state is located without a 2^n vector, and the refactored engine is
    measured against the pre-refactor DD path."""
    circuit = bv(_DD_QUBITS)
    solution = find_cuts(circuit, _DD_DEVICE, method="heuristic", max_cuts=8)
    cut = solution.apply(circuit)
    assert cut.max_subcircuit_width() <= 25
    results = [evaluate_subcircuit(s) for s in cut.subcircuits]

    naive = _PreRefactorQuery(
        PrecomputedTensorProvider(cut, results=results, cache=False),
        max_active_qubits=_DEFINITION_QUBITS,
        engine=ContractionEngine(strategy="kron"),
    )
    began = time.perf_counter()
    naive.run(_DD_RECURSIONS)
    naive_seconds = time.perf_counter() - began

    refactored = DynamicDefinitionQuery(
        PrecomputedTensorProvider(cut, results=results, cache=True),
        max_active_qubits=_DEFINITION_QUBITS,
        engine=ContractionEngine(strategy="kron"),
        zoom_width=_DD_ZOOM_WIDTH,
    )
    began = time.perf_counter()
    refactored.run(_DD_RECURSIONS)
    refactored_seconds = time.perf_counter() - began

    speedup = naive_seconds / refactored_seconds
    stats = refactored.stats()
    states = refactored.solution_states(threshold=0.25)
    expected = bv_solution(_DD_QUBITS)
    assert states and states[0][0] == expected
    assert abs(states[0][1] - 1.0) < 1e-6
    assert naive.solution_states(threshold=0.25)[0][0] == expected
    assert stats.cache_hit_rate > 0.5
    # Measured >= 5x on the reference machine; assert a safe floor so a
    # loaded CI runner cannot flake the suite.
    assert speedup >= _DD_MIN_SPEEDUP, f"speedup {speedup:.1f}x below floor"

    # Streaming-FD shard of the solution region: 2^(n-12) shards exist
    # but only the located one is computed — peak memory is one shard.
    shard_qubits = _DD_QUBITS - _DEFINITION_QUBITS
    solution_shard = int(expected[:shard_qubits], 2)
    streamer = StreamingReconstructor(
        cut,
        provider=PrecomputedTensorProvider(cut, results=results),
        engine=ContractionEngine(strategy="kron"),
    )
    shards = list(streamer.shards(shard_qubits, shard_indices=[solution_shard]))
    stream_stats = streamer.last_stats
    offset = int(expected[shard_qubits:], 2)
    shard_probability = float(shards[0].probabilities[offset])
    assert abs(shard_probability - 1.0) < 1e-6
    assert stream_stats.peak_shard_bytes == (1 << _DEFINITION_QUBITS) * 8

    document = {
        "generated_by": "bench_fig10_dd_large.py",
        "dd": {
            "benchmark": "bv",
            "qubits": _DD_QUBITS,
            "device": _DD_DEVICE,
            "num_cuts": cut.num_cuts,
            "definition_qubits": _DEFINITION_QUBITS,
            "recursions": len(refactored.recursions),
            "zoom_width": _DD_ZOOM_WIDTH,
            "naive_seconds": naive_seconds,
            "refactored_seconds": refactored_seconds,
            "speedup": speedup,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "cache_hit_rate": stats.cache_hit_rate,
            "collapse_seconds": stats.collapse_seconds,
            "contract_seconds": stats.contract_seconds,
            "recursion_seconds": [
                r.elapsed_seconds for r in refactored.recursions
            ],
            "solution_state": states[0][0],
            "solution_probability": states[0][1],
        },
        "streaming": {
            "shard_qubits": shard_qubits,
            "num_shards_total": stream_stats.num_shards_total,
            "num_shards_emitted": stream_stats.num_shards_emitted,
            "peak_shard_bytes": stream_stats.peak_shard_bytes,
            "elapsed_seconds": stream_stats.elapsed_seconds,
            "cache_hit_rate": stream_stats.cache_hit_rate,
            "solution_probability_in_shard": shard_probability,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_dd.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )
    report(
        "fig10_dd_engine",
        f"DD engine — bv-{_DD_QUBITS} on {_DD_DEVICE}-qubit budget, "
        f"{len(refactored.recursions)} recursions at 2^{_DEFINITION_QUBITS} bins",
        ["path", "seconds", "cache hit rate", "solution"],
        [
            ("pre-refactor (scan, no cache)", f"{naive_seconds:.3f}", "--",
             naive.solution_states(0.25)[0][0][:8] + "..."),
            (f"refactored (heap, cache, zoom {_DD_ZOOM_WIDTH})",
             f"{refactored_seconds:.3f}", f"{stats.cache_hit_rate:.2f}",
             states[0][0][:8] + "..."),
            ("speedup", f"{speedup:.1f}x", "--", "--"),
        ],
    )
