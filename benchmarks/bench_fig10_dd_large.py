"""Figure 10: DD postprocessing runtime far beyond the simulation limit.

Circuits of 30-64 qubits are cut onto 20/30-qubit device budgets;
subcircuit outputs are synthetic (the paper's protocol at this scale) and
one DD recursion samples a 2^12-bin landscape (2^35 in the paper — the
definition is a parameter, see DESIGN.md).  Larger devices admit cheaper
cuts and faster recursions; benchmarks that cannot be cut within the
budgets terminate early, exactly as in the paper's figure.
"""

import time

from repro.cutting import CutSearchError, find_cuts
from repro.library import get_benchmark

from conftest import interleaved_active_order, report
from repro.postprocess import RandomTensorProvider
from repro.postprocess.dd import DynamicDefinitionQuery

_DEFINITION_QUBITS = 12
_CASES = (
    ("bv", 32, {}),
    ("bv", 48, {}),
    ("bv", 64, {}),
    ("hwea", 40, {}),
    ("hwea", 64, {}),
    ("adder", 40, {"seed": 0}),
    ("supremacy", 30, {"seed": 0, "depth": 8}),
    ("supremacy", 42, {"seed": 0, "depth": 8}),
    ("aqft", 36, {}),
)
_DEVICES = (20, 30)


def _one(name, size, kwargs, device):
    circuit = get_benchmark(name, size, **kwargs)
    if device >= size:
        return None
    try:
        solution = find_cuts(circuit, device, method="heuristic", max_cuts=8)
    except CutSearchError:
        return (name, size, device, "--", "--", "uncuttable")
    cut = solution.apply(circuit)
    provider = RandomTensorProvider(cut, seed=3)
    query = DynamicDefinitionQuery(
        provider,
        max_active_qubits=_DEFINITION_QUBITS,
        active_order=interleaved_active_order(cut),
    )
    began = time.perf_counter()
    try:
        query.step()
    except MemoryError:
        return (name, size, device, cut.num_cuts, "--", "tensor too large")
    elapsed = time.perf_counter() - began
    return (name, size, device, cut.num_cuts, f"{elapsed:.3f}", "ok")


def _sweep():
    rows = []
    for device in _DEVICES:
        for name, size, kwargs in _CASES:
            row = _one(name, size, kwargs, device)
            if row is not None:
                rows.append(row)
    return rows


def test_fig10_dd_beyond_simulation_limit(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(
        "fig10",
        f"Fig. 10 — one DD recursion (definition 2^{_DEFINITION_QUBITS} "
        "bins), synthetic subcircuit outputs",
        ["benchmark", "qubits", "device", "cuts", "DD recursion s", "status"],
        rows,
    )
    ok = [row for row in rows if row[5] == "ok"]
    assert ok, "some configurations must run"
    # Largest circuits sampled far beyond classical simulation reach.
    assert max(row[1] for row in ok) >= 48
    # Larger devices never need *more* cuts for the same circuit.
    for name, size, kwargs in _CASES:
        cuts = {
            row[2]: row[3]
            for row in ok
            if row[0] == name and row[1] == size and row[3] != "--"
        }
        if len(cuts) == 2:
            assert cuts[30] <= cuts[20], (name, size, cuts)
