"""Figure 11: chi^2 reduction — CutQC on 5q Bogota vs direct 20q Johannesburg.

For each benchmark we compute the chi^2 loss of (a) direct execution on
the virtual 20-qubit Johannesburg device and (b) CutQC evaluation through
the virtual 5-qubit Bogota device, then report the paper's percentage
reduction 100*(chi2_J - chi2_B)/chi2_J.  The paper reports average
reductions of 21%-47% per benchmark (AQFT is the exception with negative
reduction and is omitted there; we include it for completeness).
"""

import numpy as np

from repro import CutQC, bogota, johannesburg, simulate_probabilities
from repro.cutting import CutSearchError
from repro.library import get_benchmark
from repro.metrics import chi_square_loss, chi_square_reduction

from conftest import report

_CASES = (
    ("bv", 6, {}),
    ("bv", 8, {}),
    ("adder", 6, {"a_value": 1, "b_value": 3}),
    ("hwea", 6, {}),
    ("hwea", 8, {}),
    ("supremacy", 6, {"seed": 0, "depth": 8}),
    ("aqft", 6, {}),
)
_SHOTS = 8192
_TRAJECTORIES = 24


def _one(name, size, kwargs, large, small):
    circuit = get_benchmark(name, size, **kwargs)
    truth = simulate_probabilities(circuit)

    direct = large.run(circuit, shots=_SHOTS, trajectories=_TRAJECTORIES)
    chi2_direct = chi_square_loss(direct, truth)

    try:
        pipeline = CutQC(
            circuit,
            max_subcircuit_qubits=small.num_qubits,
            backend=small.backend(shots=_SHOTS, trajectories=_TRAJECTORIES),
        )
        probs = np.clip(pipeline.fd_query().probabilities, 0.0, None)
        probs /= probs.sum()
    except CutSearchError:
        return (name, size, f"{chi2_direct:.4f}", "--", "--")
    chi2_cutqc = chi_square_loss(probs, truth)
    reduction = chi_square_reduction(chi2_direct, chi2_cutqc)
    return (
        name,
        size,
        f"{chi2_direct:.4f}",
        f"{chi2_cutqc:.4f}",
        f"{reduction:+.0f}%",
    )


def _sweep():
    large = johannesburg(seed=7)
    small = bogota(seed=7)
    return [_one(name, size, kwargs, large, small) for name, size, kwargs in _CASES]


def test_fig11_chi2_reduction(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(
        "fig11",
        "Fig. 11 — chi^2: direct on 20q Johannesburg vs CutQC via 5q Bogota",
        ["benchmark", "qubits", "chi^2 direct", "chi^2 CutQC", "reduction"],
        rows,
    )
    reductions = [
        float(row[4].rstrip("%")) for row in rows if row[4] != "--"
    ]
    assert reductions
    # The paper's qualitative claim: positive reduction on average, i.e.
    # CutQC with a small device beats direct execution on a large one.
    assert float(np.mean(reductions)) > 0.0
    non_aqft = [
        float(row[4].rstrip("%"))
        for row in rows
        if row[4] != "--" and row[0] != "aqft"
    ]
    assert float(np.mean(non_aqft)) > 10.0
