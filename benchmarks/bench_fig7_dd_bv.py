"""Figure 7: DD query locates the 4-qubit BV solution on 3-qubit devices.

Exactly the paper's setup: one active qubit per recursion, so each
recursion stores and computes vectors of length 2^1 instead of 2^4, and
recursion 4 pins the solution state |1111> with probability 1.
"""

import numpy as np

from repro import CutQC
from repro.library import bv, bv_solution

from conftest import report


def _run_query():
    circuit = bv(4)
    pipeline = CutQC(circuit, max_subcircuit_qubits=3)
    return pipeline, pipeline.dd_query(max_active_qubits=1, max_recursions=4)


def test_fig7_dd_locates_bv_solution(benchmark):
    pipeline, query = benchmark.pedantic(_run_query, rounds=1, iterations=1)
    rows = []
    for recursion in query.recursions:
        zoomed = "".join(
            str(recursion.fixed[w]) if w in recursion.fixed else "?"
            for w in range(4)
        )
        rows.append(
            (
                recursion.index + 1,
                zoomed,
                f"q{recursion.active[0]}",
                f"{recursion.probabilities[0]:.4f}",
                f"{recursion.probabilities[1]:.4f}",
                recursion.probabilities.size,
            )
        )
    report(
        "fig7",
        "Fig. 7 — DD on 4-qubit BV with 3-qubit devices (1 active/rec)",
        ["recursion", "zoomed state", "active", "P(bin 0)", "P(bin 1)",
         "vector length"],
        rows,
    )
    # Paper's reading of the figure:
    assert len(query.recursions) == 4
    assert all(r.probabilities.size == 2 for r in query.recursions)
    states = query.solution_states(threshold=0.9)
    assert states[0][0] == bv_solution(4)
    assert np.isclose(states[0][1], 1.0, atol=1e-9)
