"""Ablation: CutQC + readout-error mitigation (paper refs [46, 47]).

The paper's fidelity experiments use noise-adaptive compilation for both
execution modes; measurement mitigation is the next rung of the same
ladder and pairs naturally with CutQC because subcircuits are small
enough for *full* confusion-matrix calibration.  This bench extends the
Fig. 11 experiment with a third mode: CutQC via the small device with
per-width confusion inversion applied to every variant.
"""

import numpy as np

from repro import CutQC, bogota, johannesburg, simulate_probabilities
from repro.devices.mitigation import MitigatedBackend
from repro.library import get_benchmark
from repro.metrics import chi_square_loss

from conftest import report

_CASES = (
    ("bv", 6, {}),
    ("hwea", 6, {}),
    ("adder", 6, {"a_value": 1, "b_value": 3}),
)
_SHOTS = 8192
_TRAJECTORIES = 16


def _sweep():
    large = johannesburg(seed=7)
    small = bogota(seed=7)
    rows = []
    for name, size, kwargs in _CASES:
        circuit = get_benchmark(name, size, **kwargs)
        truth = simulate_probabilities(circuit)

        direct = large.run(circuit, shots=_SHOTS, trajectories=_TRAJECTORIES)
        chi2_direct = chi_square_loss(direct, truth)

        plain = CutQC(
            circuit, 5,
            backend=small.backend(shots=_SHOTS, trajectories=_TRAJECTORIES),
        )
        plain_probs = np.clip(plain.fd_query().probabilities, 0, None)
        plain_probs /= plain_probs.sum()
        chi2_plain = chi_square_loss(plain_probs, truth)

        mitigated = CutQC(
            circuit, 5,
            backend=MitigatedBackend(
                small, shots=_SHOTS, trajectories=_TRAJECTORIES,
                calibration_shots=65536, seed=13,
            ),
        )
        mitigated_probs = np.clip(mitigated.fd_query().probabilities, 0, None)
        mitigated_probs /= mitigated_probs.sum()
        chi2_mitigated = chi_square_loss(mitigated_probs, truth)

        rows.append(
            (
                name,
                size,
                f"{chi2_direct:.4f}",
                f"{chi2_plain:.4f}",
                f"{chi2_mitigated:.4f}",
            )
        )
    return rows


def test_ablation_cutqc_plus_mitigation(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(
        "ablation_mitigation",
        "Ablation — chi^2: direct(20q) vs CutQC(5q) vs CutQC(5q)+readout "
        "mitigation",
        ["benchmark", "qubits", "direct", "cutqc", "cutqc+mitigation"],
        rows,
    )
    plain = [float(row[3]) for row in rows]
    mitigated = [float(row[4]) for row in rows]
    # Mitigation must help on average (readout is a large share of the
    # virtual Bogota error budget).
    assert float(np.mean(mitigated)) < float(np.mean(plain))
    # And the full stack still beats direct execution.
    direct = [float(row[2]) for row in rows]
    assert float(np.mean(mitigated)) < float(np.mean(direct))
