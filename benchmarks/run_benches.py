#!/usr/bin/env python
"""One entry point for every benchmark CI runs.

Each bench is a pytest module under ``benchmarks/`` with env-var knobs;
this runner owns the two standard profiles so workflow files stay
declarative:

* ``--capped`` — PR-sized smoke: small sweeps, conservative speedup
  floors, minutes of wall clock.  The pull-request workflow runs this.
* ``--full``  — the nightly profile: paper-sized sweeps and the real
  assertion floors.  The ``schedule:`` workflow runs this and uploads
  every ``results/BENCH_*.json`` artifact.

Usage::

    python benchmarks/run_benches.py --capped [--only NAME] [--list]
    python benchmarks/run_benches.py --full

Exit status is non-zero if any selected bench fails; a summary table is
always printed.  Bench artifacts land in ``results/`` exactly as when
the modules are run by hand.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@dataclass
class Bench:
    """One benchmark invocation: a pytest target plus per-profile env."""

    name: str
    target: str  # pytest path (optionally ::test), relative to repo root
    capped_env: Dict[str, str] = field(default_factory=dict)
    full_env: Dict[str, str] = field(default_factory=dict)
    artifacts: List[str] = field(default_factory=list)

    def env_for(self, profile: str) -> Dict[str, str]:
        return self.capped_env if profile == "capped" else self.full_env


BENCHES: List[Bench] = [
    Bench(
        name="fd-runtime",
        target=(
            "benchmarks/bench_fig6_fd_runtime.py"
            "::test_fig6_fd_postprocessing_vs_simulation"
        ),
        capped_env={
            "REPRO_BENCH_DEVICES": "6",
            "REPRO_BENCH_BENCHMARKS": "bv,hwea,supremacy",
        },
        full_env={},  # module defaults are the full fig6 sweep
        artifacts=["results/BENCH_fd.json", "results/fig6_measured.txt"],
    ),
    Bench(
        name="dd-engine",
        target=(
            "benchmarks/bench_fig10_dd_large.py"
            "::test_fig10_dd_zoom_cache_speedup"
        ),
        capped_env={
            "REPRO_BENCH_DD_QUBITS": "33",
            "REPRO_BENCH_DD_DEVICE": "13",
            "REPRO_BENCH_DD_RECURSIONS": "25",
            "REPRO_BENCH_DD_MIN_SPEEDUP": "1.5",
        },
        full_env={},  # module defaults: bv-41 on 17 qubits, 3x floor
        artifacts=["results/BENCH_dd.json", "results/fig10_dd_engine.txt"],
    ),
    Bench(
        name="service-throughput",
        target="benchmarks/bench_service_throughput.py",
        capped_env={"REPRO_BENCH_SERVICE_MIN_SPEEDUP": "1.5"},
        full_env={"REPRO_BENCH_SERVICE_WARM_QUERIES": "50"},
        artifacts=["results/BENCH_service.json", "results/bench_service.txt"],
    ),
    Bench(
        name="service-load",
        target="benchmarks/bench_service_load.py",
        capped_env={
            "REPRO_BENCH_LOAD_JOBS": "200",
            "REPRO_BENCH_LOAD_MIN_QPS": "1.0",
        },
        full_env={
            "REPRO_BENCH_LOAD_JOBS": "1200",
            "REPRO_BENCH_LOAD_CLIENTS": "24",
        },
        artifacts=[
            "results/BENCH_service.json",
            "results/bench_service_load.txt",
        ],
    ),
    Bench(
        name="variant-batch",
        target="benchmarks/bench_variant_batch.py",
        capped_env={
            "REPRO_BENCH_VB_SWEEP": "14:5:4,18:5:6,22:8:5,26:10:5",
        },
        full_env={},  # module defaults: the 7-config fig6-style BV sweep
        artifacts=[
            "results/BENCH_variant_batch.json",
            "results/bench_variant_batch.txt",
        ],
    ),
    Bench(
        name="noisy-batch",
        target="benchmarks/bench_noisy_batch.py",
        capped_env={
            "REPRO_BENCH_NB_SWEEP": "10:5:3,14:5:4",
        },
        full_env={
            "REPRO_BENCH_NB_SWEEP": "10:5:3,12:5:4,14:5:4,16:5:5,18:5:6",
            "REPRO_BENCH_NB_TRAJECTORIES": "16",
        },
        artifacts=["results/BENCH_noisy.json", "results/bench_noisy_batch.txt"],
    ),
    Bench(
        name="parallel-query",
        target="benchmarks/bench_parallel_query.py",
        capped_env={},  # module defaults are already CI-sized (bv-26)
        full_env={
            "REPRO_BENCH_PARALLEL_QUBITS": "28",
            "REPRO_BENCH_PARALLEL_DEVICE": "15",
        },
        artifacts=["results/BENCH_parallel.json", "results/bench_parallel.txt"],
    ),
    Bench(
        name="variational",
        target="benchmarks/bench_variational.py",
        capped_env={
            "REPRO_BENCH_VAR_ITERATIONS": "2",
        },
        full_env={},  # module defaults: 4 SPSA iterations on qaoa-14
        artifacts=[
            "results/BENCH_variational.json",
            "results/bench_variational.txt",
        ],
    ),
    Bench(
        name="obs-overhead",
        target="benchmarks/bench_obs_overhead.py",
        capped_env={},  # module defaults are already CI-sized (~10s)
        full_env={
            "REPRO_BENCH_OBS_PAIRS": "9",
            "REPRO_BENCH_OBS_SAMPLES": "5",
        },
        artifacts=[
            "results/BENCH_obs.json",
            "results/bench_obs_overhead.txt",
        ],
    ),
    Bench(
        name="chaos-overhead",
        target="benchmarks/bench_chaos_overhead.py",
        capped_env={},  # module defaults are already CI-sized (~15s)
        full_env={
            "REPRO_BENCH_CHAOS_PAIRS": "9",
            "REPRO_BENCH_CHAOS_SAMPLES": "5",
        },
        artifacts=[
            "results/BENCH_chaos.json",
            "results/bench_chaos_overhead.txt",
        ],
    ),
]


def run_bench(bench: Bench, profile: str) -> float:
    """Run one bench; returns wall seconds.  Raises CalledProcessError."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    env.update(bench.env_for(profile))
    command = [sys.executable, "-m", "pytest", "-q", "-s", bench.target]
    began = time.perf_counter()
    subprocess.run(command, cwd=REPO_ROOT, env=env, check=True)
    return time.perf_counter() - began


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    profile_group = parser.add_mutually_exclusive_group()
    profile_group.add_argument(
        "--capped", action="store_const", const="capped", dest="profile",
        help="PR-sized smoke profile",
    )
    profile_group.add_argument(
        "--full", action="store_const", const="full", dest="profile",
        help="nightly full profile",
    )
    parser.add_argument(
        "--only", metavar="NAME", action="append", default=None,
        help="run only this bench (repeatable); see --list",
    )
    parser.add_argument(
        "--list", action="store_true", help="list benches and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for bench in BENCHES:
            print(f"{bench.name:<20} {bench.target}")
        return 0
    if args.profile is None:
        parser.error("one of --capped / --full is required")

    selected = BENCHES
    if args.only:
        known = {bench.name for bench in BENCHES}
        unknown = set(args.only) - known
        if unknown:
            parser.error(
                f"unknown bench(es) {sorted(unknown)}; choose from "
                f"{sorted(known)}"
            )
        selected = [bench for bench in BENCHES if bench.name in args.only]

    rows = []
    failed = []
    for bench in selected:
        print(f"\n=== {bench.name} [{args.profile}] ===", flush=True)
        try:
            seconds = run_bench(bench, args.profile)
            rows.append((bench.name, "ok", f"{seconds:.1f}s"))
        except subprocess.CalledProcessError as error:
            failed.append(bench.name)
            rows.append((bench.name, f"FAILED (rc={error.returncode})", "--"))

    print(f"\n== bench summary [{args.profile}] ==")
    for name, status, seconds in rows:
        print(f"{name:<20} {status:<18} {seconds}")
    if failed:
        print(f"\n{len(failed)} bench(es) failed: {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
