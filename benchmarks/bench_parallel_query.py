"""Shard-parallel streaming FD through the persistent worker pool.

The paper's headline claim is that classical postprocessing scales with
the compute you throw at it.  This bench measures the claim on the
query stage: a streaming-FD top-k query evaluated

* **serial** — shards contracted one after another in the parent (the
  pre-pool behaviour), and
* **pooled** — the same shards fanned over a persistent
  :class:`~repro.postprocess.parallel.WorkerPool` (tensors published to
  shared memory once, per-shard top-k candidates merged in the parent).

Both paths produce identical states; only the wall clock differs.  On a
machine with >= 4 cores the pooled path must be >= 2x faster (env
``REPRO_BENCH_PARALLEL_MIN_SPEEDUP`` adjusts the floor); below 4 cores
the measurement is recorded but not gated.  Results land in
``results/BENCH_parallel.json`` (uploaded by CI).
"""

import json
import os
import time

from repro import CutQC
from repro.library import get_benchmark
from repro.postprocess import WorkerPool

from conftest import RESULTS_DIR, report

#: bv-26 on a 14-qubit budget: one cut, 8 shards of 2^23 entries — each
#: shard is ~180 ms of contraction on the reference machine, far above
#: the ~1 ms per-task dispatch cost, so the fan-out is compute-bound.
_BENCHMARK = os.environ.get("REPRO_BENCH_PARALLEL_BENCHMARK", "bv")
_QUBITS = int(os.environ.get("REPRO_BENCH_PARALLEL_QUBITS", "26"))
_DEVICE = int(os.environ.get("REPRO_BENCH_PARALLEL_DEVICE", "14"))
_SHARD_QUBITS = int(os.environ.get("REPRO_BENCH_PARALLEL_SHARDS", "3"))
_TOP_K = int(os.environ.get("REPRO_BENCH_PARALLEL_TOP_K", "5"))
_WORKERS = int(
    os.environ.get(
        "REPRO_BENCH_PARALLEL_WORKERS", str(min(4, os.cpu_count() or 1))
    )
)
#: The acceptance floor, enforced only with >= _MIN_CPUS physical slots.
_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_PARALLEL_MIN_SPEEDUP", "2.0"))
_MIN_CPUS = int(os.environ.get("REPRO_BENCH_PARALLEL_MIN_CPUS", "4"))


def test_parallel_query_speedup():
    circuit = get_benchmark(_BENCHMARK, _QUBITS)
    cpu_count = os.cpu_count() or 1

    # One pipeline per path so neither benefits from the other's caches;
    # the cut and the evaluated tensors are identical by construction.
    serial_pipeline = CutQC(circuit, max_subcircuit_qubits=_DEVICE)
    serial_pipeline.evaluate()

    began = time.perf_counter()
    serial_states = serial_pipeline.fd_top_k(_SHARD_QUBITS, _TOP_K)
    serial_seconds = time.perf_counter() - began
    serial_stats = serial_pipeline.stream_stats

    with WorkerPool(workers=_WORKERS) as pool:
        pooled_pipeline = CutQC(
            circuit, max_subcircuit_qubits=_DEVICE, worker_pool=pool
        )
        pooled_pipeline.load_cut(serial_pipeline.cut())
        pooled_pipeline.load_results(serial_pipeline.evaluate())

        # Warm the workers (pool start + tensor publication) outside the
        # measured region — the pool is persistent by design, so steady
        # state is what a long-running service observes.
        pooled_pipeline.fd_top_k(_SHARD_QUBITS, _TOP_K)
        began = time.perf_counter()
        pooled_states = pooled_pipeline.fd_top_k(_SHARD_QUBITS, _TOP_K)
        pooled_seconds = time.perf_counter() - began
        pooled_stats = pooled_pipeline.stream_stats
        pool_stats = pool.stats()

    assert pooled_states == serial_states, "pooled top-k diverged from serial"
    assert pooled_stats.transport == "pool"
    speedup = serial_seconds / pooled_seconds

    gated = cpu_count >= _MIN_CPUS and _WORKERS > 1
    document = {
        "generated_by": "bench_parallel_query.py",
        "benchmark": _BENCHMARK,
        "qubits": _QUBITS,
        "device_size": _DEVICE,
        "shard_qubits": _SHARD_QUBITS,
        "num_shards": 1 << _SHARD_QUBITS,
        "top_k": _TOP_K,
        "workers": _WORKERS,
        "cpu_count": cpu_count,
        "gated": gated,
        "min_speedup": _MIN_SPEEDUP,
        "serial_seconds": serial_seconds,
        "parallel_seconds": pooled_seconds,
        "speedup": speedup,
        "serial_cache_hit_rate": serial_stats.cache_hit_rate,
        "pool": {
            "tasks_completed": pool_stats.tasks_completed,
            "busy_seconds": pool_stats.busy_seconds,
            "utilization": pool_stats.utilization,
            "bytes_published": pool_stats.bytes_published,
            "tasks_by_kind": pool_stats.tasks_by_kind,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_parallel.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )
    report(
        "bench_parallel",
        f"Shard-parallel FD — {_BENCHMARK}-{_QUBITS} on {_DEVICE}-qubit "
        f"budget, 2^{_SHARD_QUBITS} shards, top-{_TOP_K}",
        ["path", "seconds", "workers", "notes"],
        [
            ("serial shards", f"{serial_seconds:.3f}", 1,
             f"{1 << _SHARD_QUBITS} shards in the parent"),
            ("pooled shards", f"{pooled_seconds:.3f}", _WORKERS,
             f"shared-memory transport, "
             f"{pool_stats.bytes_published >> 10} KiB published"),
            ("speedup", f"{speedup:.2f}x", "--",
             f"floor {_MIN_SPEEDUP}x "
             + ("enforced" if gated else
                f"not enforced ({cpu_count} < {_MIN_CPUS} cpus)")),
        ],
    )

    if gated:
        assert speedup >= _MIN_SPEEDUP, (
            f"shard-parallel speedup {speedup:.2f}x below the "
            f"{_MIN_SPEEDUP}x floor on {cpu_count} cpus "
            f"(serial {serial_seconds:.3f}s, pooled {pooled_seconds:.3f}s)"
        )
