"""Chaos-harness overhead: hooks disabled vs configured-but-never-firing.

The fault-injection hooks (:mod:`repro.chaos`) sit on the service hot
paths — every artifact-store read and write, every journal append, every
pool dispatch.  The design claim mirrors the tracing one: the *disabled*
path is a single global read that returns immediately, and even the
*armed* path (a spec whose selectors never match) only walks a tiny rule
list per consultation.

The estimator is the same drift-cancelling construction as
``bench_obs_overhead.py``: adjacent off/on pairs, best-of-k per side,
median of per-pair ratios::

    speedup = median_i( best_off_i / best_on_i )   # 1.0 = free

The workload is the hook-dense one: warm scheduler jobs, each of which
replays the cut and evaluation artifacts from the store (two read hooks),
journals its state transitions (append hooks) and writes its job
document (write hook).  ``results/BENCH_chaos.json`` records the figure;
the floor (default 0.95, i.e. <= 5% overhead) is enforced here and by
``tools/check_bench_regression.py`` against ``results/baselines.json``.
"""

import json
import os
import statistics
import tempfile
import time

from repro import chaos
from repro.service import ArtifactStore, JobScheduler, JobSpec

from conftest import RESULTS_DIR, report

#: Warm jobs timed per side of a pair.
_JOBS = int(os.environ.get("REPRO_BENCH_CHAOS_JOBS", "24"))
#: Number of adjacent off/on pairs; the gated figure is their median ratio.
_PAIRS = int(os.environ.get("REPRO_BENCH_CHAOS_PAIRS", "5"))
#: Back-to-back runs per side of a pair; each side scores its fastest.
_SAMPLES = int(os.environ.get("REPRO_BENCH_CHAOS_SAMPLES", "3"))
#: Floor on off/on: 0.95 == the armed-but-idle harness may cost at most 5%.
_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_CHAOS_MIN_SPEEDUP", "0.95"))

#: Armed spec whose selectors can never match (ordinals start at 1), so
#: every consultation walks the full rule-evaluation path but nothing
#: fires and nothing faults the measured jobs.
_IDLE_SPEC = "store_ioerror@at=0;corrupt_artifact@at=0;journal_ioerror@at=0"

_SPEC = {"benchmark": "bv", "qubits": 6, "device_size": 5, "query": "fd",
         "top": 3}


def _timed(scheduler: JobScheduler, armed: bool) -> float:
    chaos.configure(_IDLE_SPEC if armed else None, export=False)
    try:
        began = time.perf_counter()
        for _ in range(_JOBS):
            record = scheduler.wait(
                scheduler.submit(JobSpec(**_SPEC)), timeout=60
            )
            assert record.state == "done", record.error
        return time.perf_counter() - began
    finally:
        chaos.configure(None)


def test_chaos_overhead_within_budget():
    with tempfile.TemporaryDirectory() as root:
        scheduler = JobScheduler(ArtifactStore(root), workers=1)
        try:
            # One untimed cold job warms the store so every measured job
            # takes the artifact-replay path the hooks actually guard.
            warm = scheduler.wait(scheduler.submit(JobSpec(**_SPEC)),
                                  timeout=120)
            assert warm.state == "done", warm.error

            # Each completed job leaves a job document in the store, so
            # later runs scan a slightly bigger directory — a monotone
            # drift.  Alternating which side goes first inside each pair
            # keeps that drift from always penalising the same side.
            pairs = []
            for index in range(_PAIRS):
                sides = {}
                order = (False, True) if index % 2 == 0 else (True, False)
                for armed in order:
                    sides[armed] = min(
                        _timed(scheduler, armed=armed)
                        for _ in range(_SAMPLES)
                    )
                pairs.append((sides[False], sides[True]))
        finally:
            scheduler.shutdown()

    off_seconds = statistics.median(off for off, _ in pairs)
    on_seconds = statistics.median(on for _, on in pairs)
    speedup = statistics.median(off / on for off, on in pairs)
    overhead = 1.0 / speedup - 1.0

    rows = [
        ("chaos disabled", _PAIRS * _SAMPLES, f"{off_seconds:.4f}", "--"),
        ("chaos armed, idle", _PAIRS * _SAMPLES, f"{on_seconds:.4f}",
         f"{100 * overhead:+.1f}%"),
    ]
    report(
        "bench_chaos_overhead",
        f"Chaos-hook overhead — {_JOBS} warm bv jobs per run, "
        f"median ratio of {_PAIRS} best-of-{_SAMPLES} off/on pairs",
        ["mode", "runs", "median s", "overhead"],
        rows,
    )

    document = {
        "generated_by": "bench_chaos_overhead.py",
        "jobs_per_run": _JOBS,
        "pairs": _PAIRS,
        "samples_per_side": _SAMPLES,
        "idle_spec": _IDLE_SPEC,
        "off_seconds": off_seconds,
        "on_seconds": on_seconds,
        "overhead": overhead,
        "speedup": speedup,
        "min_speedup": _MIN_SPEEDUP,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_chaos.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )

    assert speedup >= _MIN_SPEEDUP, (
        f"armed-but-idle chaos costs {100 * overhead:.1f}% "
        f"(median off {off_seconds:.4f}s vs on {on_seconds:.4f}s); "
        f"budget is {100 * (1 - _MIN_SPEEDUP):.0f}%"
    )
