"""Figure 12: postprocessing scales with parallel workers.

The paper postprocesses a 4x6 supremacy circuit mapped to the 15-qubit
Melbourne device on 1-16 compute nodes and observes near-perfect scaling
(14X on 16 nodes), because the 4^K Kronecker terms partition with no
inter-node communication.  We run the same experiment with a local
multiprocessing pool: a 4x5 (20-qubit) supremacy circuit on a 14-qubit
budget, workers 1/2/4.
"""

import os

import numpy as np
import pytest

from repro import CutQC
from repro.library import supremacy

from conftest import report

_WORKERS = (1, 2, 4)


@pytest.fixture(scope="module")
def prepared_pipeline():
    circuit = supremacy(20, seed=0, depth=8)
    pipeline = CutQC(circuit, max_subcircuit_qubits=14)
    cut = pipeline.cut()
    pipeline.evaluate()
    return pipeline, cut


def test_fig12_parallel_scaling(benchmark, prepared_pipeline):
    pipeline, cut = prepared_pipeline

    def sweep():
        timings = {}
        reference = None
        for workers in _WORKERS:
            result = pipeline.fd_query(workers=workers)
            timings[workers] = result.stats.elapsed_seconds
            if reference is None:
                reference = result.probabilities
            else:
                assert np.allclose(result.probabilities, reference, atol=1e-10)
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    serial = timings[1]
    cores = os.cpu_count() or 1
    rows = [
        (workers, cut.num_cuts, 4**cut.num_cuts, f"{seconds:.3f}",
         f"{serial / seconds:.2f}x", f"{min(workers, cores):.2f}x")
        for workers, seconds in sorted(timings.items())
    ]
    report(
        "fig12",
        "Fig. 12 — FD postprocess scaling, 20q supremacy on 14q budget "
        f"({cores} CPU core(s) available)",
        ["workers", "cuts", "kron products", "runtime s", "speedup",
         "achievable"],
        rows,
    )
    # The batched contraction engine reconstructs this workload in well
    # under a second, so the fixed pool cost (process spawn + tensor
    # pickling + result transfer) only amortizes on long reconstructions.
    # The scaling claim is therefore conditional on a serial runtime that
    # can hide that constant; below it (and on single-core machines) the
    # hard claim left is the one that makes the paper's scaling possible:
    # the zero-communication partition reproduces the identical
    # distribution for every worker count (asserted inside sweep()),
    # with bounded absolute overhead.
    if cores >= 2 and serial > 2.0:
        # Scaling claim: the widest pool achieves a real speedup over
        # serial (the paper sees 14X on 16 nodes).
        assert serial / timings[max(_WORKERS)] > 1.3
        assert timings[max(_WORKERS)] < serial * 1.1
    else:
        assert timings[max(_WORKERS)] < serial * 3.0 + 2.0
