"""Ablations: the FD postprocessing optimizations of §4.2.

The paper credits three techniques for the reconstructor's performance:
greedy subcircuit order (up to 50% fewer multiplications), early
termination (zero Kronecker components are "surprisingly" common), and
embarrassing parallelism (benched in fig12).  This ablation measures each
on a supremacy workload, plus the tensor-network contraction the paper
leaves on the table (pairwise einsum over the same tensors — identical
output, no 4^K enumeration).
"""

import time

import numpy as np

from repro import CutQC
from repro.library import bv, supremacy
from repro.postprocess import Reconstructor

from conftest import report


def _prepare(circuit, device):
    pipeline = CutQC(circuit, max_subcircuit_qubits=device)
    pipeline.evaluate()
    return Reconstructor(pipeline.cut(), results=pipeline.evaluate())


def _timed(reconstructor, **kwargs):
    began = time.perf_counter()
    result = reconstructor.reconstruct(**kwargs)
    return result, time.perf_counter() - began


def test_ablation_fd_optimizations(benchmark):
    def sweep():
        rows = []
        for name, circuit, device in (
            ("supremacy-15", supremacy(15, seed=0, depth=8), 8),
            ("bv-14", bv(14), 8),
        ):
            reconstructor = _prepare(circuit, device)
            baseline, baseline_s = _timed(
                reconstructor, greedy_order=True, early_termination=True
            )
            variants = {
                "all optimizations": (baseline, baseline_s),
                "no greedy order": _timed(
                    reconstructor, greedy_order=False, early_termination=True
                ),
                "no early termination": _timed(
                    reconstructor, greedy_order=True, early_termination=False
                ),
                "neither": _timed(
                    reconstructor, greedy_order=False, early_termination=False
                ),
                "tensor network": _timed(
                    reconstructor, strategy="tensor_network"
                ),
            }
            for label, (result, seconds) in variants.items():
                assert np.allclose(
                    result.probabilities,
                    baseline.probabilities,
                    atol=1e-9,
                ), f"{name}/{label} changed the output"
                rows.append(
                    (
                        name,
                        label,
                        f"{seconds:.3f}",
                        result.stats.num_skipped,
                        result.stats.num_terms,
                    )
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "ablation_postprocess",
        "Ablation — FD postprocessing optimizations (§4.2)",
        ["workload", "configuration", "runtime s", "terms skipped",
         "terms total"],
        rows,
    )
    timing = {(row[0], row[1]): float(row[2]) for row in rows}
    # Early termination must not meaningfully hurt, and the tensor-network
    # strategy (no 4^K enumeration) must beat plain enumeration on the
    # dense, many-cut case.
    assert (
        timing[("supremacy-15", "all optimizations")]
        <= timing[("supremacy-15", "no early termination")] * 1.5 + 0.05
    )
    assert (
        timing[("supremacy-15", "tensor network")]
        < timing[("supremacy-15", "neither")]
    )


def test_ablation_cut_search_backends(benchmark):
    """Exact B&B vs heuristics: objective quality and search time."""
    from repro import build_circuit_graph
    from repro.cutting import branch_and_bound_search, heuristic_search
    from repro.cutting.model import CutSearchError

    cases = (
        ("bv-12/8", bv(12), 8),
        ("supremacy-12/8", supremacy(12, seed=1, depth=8), 8),
        ("supremacy-15/10", supremacy(15, seed=0, depth=8), 10),
    )

    def sweep():
        rows = []
        for label, circuit, device in cases:
            graph = build_circuit_graph(circuit)
            began = time.perf_counter()
            try:
                _, exact = branch_and_bound_search(graph, device)
                exact_obj, exact_s = exact.objective, time.perf_counter() - began
            except CutSearchError:
                exact_obj, exact_s = float("nan"), time.perf_counter() - began
            began = time.perf_counter()
            _, approx = heuristic_search(graph, device)
            approx_s = time.perf_counter() - began
            ratio = (
                approx.objective / exact_obj if exact_obj == exact_obj else float("nan")
            )
            rows.append(
                (
                    label,
                    graph.num_vertices,
                    f"{exact_obj:.2e}",
                    f"{exact_s:.2f}",
                    f"{approx.objective:.2e}",
                    f"{approx_s:.2f}",
                    f"{ratio:.1f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "ablation_cut_search",
        "Ablation — exact B&B (Gurobi stand-in) vs heuristic cut search",
        ["workload", "gate vertices", "exact obj", "exact s",
         "heuristic obj", "heuristic s", "quality gap"],
        rows,
    )
    gaps = [float(row[6].rstrip("x")) for row in rows if row[6] != "nanx"]
    assert gaps and min(gaps) >= 1.0  # heuristics never beat the optimum
    # ... and stay within two extra cuts of it on these workloads.
    assert max(gaps) <= 16.0**2
