"""Batched noisy evaluation vs the per-circuit device path (fig11 sweep).

The ``--device`` half of a CutQC run evaluates every ``3^O * 4^rho``
variant under the device's noise model.  The legacy path (PR 2) builds
and transpiles one full circuit per variant and walks a Python per-gate
trajectory loop for each; the batched path (PR 6) transpiles the
measurement-free body **once per subcircuit**, folds prep fragments into
the first body block, evolves all init states on a batch axis and
derives every measurement basis from the retained states — the fused
body stays resident across chunks via the per-process geometry memo.

This bench runs a fig11-style BV sweep on a line-topology virtual
device through both :class:`~repro.core.executor.VariantExecutor`
strategies, sanity-checks the batched distributions, and gates an
aggregate (total per-circuit / total batched) speedup floor.  Both
paths are measured warm (transpile/geometry memos populated), matching
the steady state a service observes.  Results land in
``results/BENCH_noisy.json``.
"""

import json
import os
import time

import numpy as np

from repro import CutQC, make_device
from repro.core.executor import VariantExecutor
from repro.cutting import num_physical_variants
from repro.library import get_benchmark
from repro.sim import NoiseModel

from conftest import RESULTS_DIR, report

#: (qubits, device size, max subcircuits) — BV configs whose middle
#: subcircuits carry both init and measurement lines.  Env overrides:
#: comma-separated ``n:D:S`` triples.
_DEFAULT_SWEEP = "10:5:3,12:5:4,14:5:4,16:5:5"
_SWEEP = [
    tuple(int(part) for part in entry.split(":"))
    for entry in os.environ.get(
        "REPRO_BENCH_NB_SWEEP", _DEFAULT_SWEEP
    ).split(",")
]
_BENCHMARK = os.environ.get("REPRO_BENCH_NB_BENCHMARK", "bv")
_TRAJECTORIES = int(os.environ.get("REPRO_BENCH_NB_TRAJECTORIES", "8"))
_SHOTS = int(os.environ.get("REPRO_BENCH_NB_SHOTS", "2048"))
_SIM_BATCH = int(os.environ.get("REPRO_BENCH_NB_SIM_BATCH", "256"))
_REPS = int(os.environ.get("REPRO_BENCH_NB_REPS", "3"))
_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_NB_MIN_SPEEDUP", "3.0"))

_NOISE = NoiseModel(error_1q=0.001, error_2q=0.01, readout=0.015)


def _measure(executor, subcircuits):
    executor.run(subcircuits)  # warm: transpile/geometry memos, caches
    began = time.perf_counter()
    for _ in range(_REPS):
        results = executor.run(subcircuits)
    return (time.perf_counter() - began) / _REPS, results


def test_noisy_batch_speedup():
    rows = []
    configs = []
    total_legacy = 0.0
    total_batched = 0.0
    for qubits, device_size, max_subcircuits in _SWEEP:
        circuit = get_benchmark(_BENCHMARK, qubits)
        pipeline = CutQC(
            circuit,
            max_subcircuit_qubits=device_size,
            max_subcircuits=max_subcircuits,
            max_cuts=12,
        )
        cut = pipeline.cut()
        subcircuits = cut.subcircuits
        device = make_device(
            f"bench-{qubits}", device_size, "line", noise=_NOISE, seed=qubits
        )

        legacy_executor = VariantExecutor(
            device=device,
            device_shots=_SHOTS,
            trajectories=_TRAJECTORIES,
            seed=17,
            sim_batch=0,
        )
        legacy_seconds, _ = _measure(legacy_executor, subcircuits)
        assert legacy_executor.last_report.mode == "serial"

        batched_executor = VariantExecutor(
            device=device,
            device_shots=_SHOTS,
            trajectories=_TRAJECTORIES,
            seed=17,
            sim_batch=_SIM_BATCH,
        )
        batched_seconds, batched = _measure(batched_executor, subcircuits)
        batched_report = batched_executor.last_report
        assert batched_report.mode == "batched-noisy"

        # The two paths draw different (both deterministic) noise
        # streams, so they agree statistically, not bit-for-bit; the
        # parity suite (tests/test_noisy_batch.py) pins the estimator.
        # Here: every batched vector must be a distribution.
        for result in batched:
            for vector in result.probabilities.values():
                assert float(vector.min()) >= -1e-12
                assert abs(float(vector.sum()) - 1.0) <= 1e-6

        num_variants = sum(num_physical_variants(s) for s in subcircuits)
        speedup = legacy_seconds / batched_seconds
        total_legacy += legacy_seconds
        total_batched += batched_seconds
        configs.append(
            {
                "qubits": qubits,
                "device_size": device_size,
                "num_cuts": cut.num_cuts,
                "num_subcircuits": cut.num_subcircuits,
                "num_variants": num_variants,
                "num_body_passes": batched_report.num_body_passes,
                "legacy_seconds": legacy_seconds,
                "batched_seconds": batched_seconds,
                "speedup": speedup,
            }
        )
        rows.append(
            (
                f"{_BENCHMARK}-{qubits}",
                device_size,
                cut.num_cuts,
                num_variants,
                batched_report.num_body_passes,
                f"{legacy_seconds * 1000:.2f}",
                f"{batched_seconds * 1000:.2f}",
                f"{speedup:.1f}x",
            )
        )

    aggregate = total_legacy / total_batched
    document = {
        "generated_by": "bench_noisy_batch.py",
        "benchmark": _BENCHMARK,
        "trajectories": _TRAJECTORIES,
        "shots": _SHOTS,
        "sim_batch": _SIM_BATCH,
        "reps": _REPS,
        "min_speedup": _MIN_SPEEDUP,
        "gated": True,
        "total_legacy_seconds": total_legacy,
        "total_batched_seconds": total_batched,
        "speedup": aggregate,
        "configs": configs,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_noisy.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )
    rows.append(
        (
            "aggregate",
            "--",
            "--",
            "--",
            "--",
            f"{total_legacy * 1000:.2f}",
            f"{total_batched * 1000:.2f}",
            f"{aggregate:.1f}x",
        )
    )
    report(
        "bench_noisy_batch",
        f"Batched noisy evaluation vs per-circuit device path — "
        f"{_BENCHMARK} sweep, {_TRAJECTORIES} trajectories, "
        f"{_SHOTS} shots",
        ["config", "D", "cuts", "variants", "passes", "legacy ms",
         "batched ms", "speedup"],
        rows,
    )

    assert aggregate >= _MIN_SPEEDUP, (
        f"batched noisy evaluation speedup {aggregate:.2f}x is below "
        f"the {_MIN_SPEEDUP}x floor "
        f"(legacy {total_legacy:.3f}s, batched {total_batched:.3f}s)"
    )
