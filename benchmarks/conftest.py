"""Shared helpers for the figure-reproduction benchmarks.

Every bench regenerates the rows/series of one paper table or figure and
records them under ``results/`` (plus stdout, visible with ``pytest -s``).
Absolute numbers differ from the paper (Python on one machine vs C+MKL on
a 16-node cluster); the reproduction target is the *shape*: who wins, by
roughly what factor, and where the crossovers fall.  EXPERIMENTS.md
summarizes paper-vs-measured for each figure.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, List, Sequence

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def report(figure: str, title: str, header: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Format a results table, print it, and persist it to results/."""
    rows = [list(map(str, row)) for row in rows]
    header = list(header)
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))

    lines: List[str] = [f"== {title} ==", fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{figure}.txt").write_text(text + "\n")
    return text


def interleaved_active_order(cut) -> List[int]:
    """Spread DD active qubits across subcircuits (balances bin tensors)."""
    queues = [[line.wire for line in sub.output_lines] for sub in cut.subcircuits]
    order: List[int] = []
    while any(queues):
        for queue in queues:
            if queue:
                order.append(queue.pop(0))
    return order
