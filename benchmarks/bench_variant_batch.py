"""Batched+fused variant simulation vs the per-variant path (fig6 sweep).

The quantum-workload half of every CutQC run is evaluating the
``3^O * 4^rho`` physical variants of each subcircuit.  The per-variant
path (PRs 1-4) simulates one full circuit per variant through a Python
per-gate loop; the batched strategy simulates the measurement-free body
**once per init batch** (all ``4^rho`` init states stacked on a batch
axis, gates fused to <= ``fusion_width`` qubits) and derives every
``3^O`` measurement basis from the retained states.

This bench runs a fig6-style BV sweep through both
:class:`~repro.core.executor.VariantExecutor` strategies, verifies the
distributions agree to 1e-10, and gates an aggregate (total serial /
total batched) speedup floor.  Both paths are measured warm (the fusion
memo and NumPy buffers populated), matching the steady state a service
observes.  Results land in ``results/BENCH_variant_batch.json``.
"""

import json
import os
import time

import numpy as np

from repro import CutQC
from repro.core.executor import VariantExecutor
from repro.cutting import num_physical_variants
from repro.library import get_benchmark

from conftest import RESULTS_DIR, report

#: (qubits, device size, max subcircuits) — multi-cut BV configs whose
#: middle subcircuits carry both init and measurement lines, the shape
#: the batched strategy attacks.  Env overrides: comma-separated
#: ``n:D:S`` triples.
_DEFAULT_SWEEP = "14:5:4,16:5:5,18:5:6,20:7:5,22:8:5,24:9:5,26:10:5"
_SWEEP = [
    tuple(int(part) for part in entry.split(":"))
    for entry in os.environ.get(
        "REPRO_BENCH_VB_SWEEP", _DEFAULT_SWEEP
    ).split(",")
]
_BENCHMARK = os.environ.get("REPRO_BENCH_VB_BENCHMARK", "bv")
_FUSION_WIDTH = int(os.environ.get("REPRO_BENCH_VB_FUSION_WIDTH", "4"))
_SIM_BATCH = int(os.environ.get("REPRO_BENCH_VB_SIM_BATCH", "256"))
_REPS = int(os.environ.get("REPRO_BENCH_VB_REPS", "3"))
_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_VB_MIN_SPEEDUP", "5.0"))
_MAX_ABS_ERROR = 1e-10


def _measure(executor, subcircuits):
    executor.run(subcircuits)  # warm: fusion memo, allocator, caches
    began = time.perf_counter()
    for _ in range(_REPS):
        results = executor.run(subcircuits)
    return (time.perf_counter() - began) / _REPS, results


def test_variant_batch_speedup():
    rows = []
    configs = []
    total_serial = 0.0
    total_batched = 0.0
    for qubits, device, max_subcircuits in _SWEEP:
        circuit = get_benchmark(_BENCHMARK, qubits)
        pipeline = CutQC(
            circuit,
            max_subcircuit_qubits=device,
            max_subcircuits=max_subcircuits,
            max_cuts=12,
        )
        cut = pipeline.cut()
        subcircuits = cut.subcircuits

        serial_seconds, serial = _measure(VariantExecutor(), subcircuits)
        batched_executor = VariantExecutor(
            sim_batch=_SIM_BATCH, fusion_width=_FUSION_WIDTH
        )
        batched_seconds, batched = _measure(batched_executor, subcircuits)
        batched_report = batched_executor.last_report

        worst = max(
            np.abs(a.probabilities[key] - b.probabilities[key]).max()
            for a, b in zip(serial, batched)
            for key in a.probabilities
        )
        assert worst <= _MAX_ABS_ERROR, (
            f"{_BENCHMARK}-{qubits} batched distributions diverge from the "
            f"per-variant path by {worst:.3e}"
        )
        assert batched_report.mode == "batched"

        num_variants = sum(num_physical_variants(s) for s in subcircuits)
        speedup = serial_seconds / batched_seconds
        total_serial += serial_seconds
        total_batched += batched_seconds
        configs.append(
            {
                "qubits": qubits,
                "device_size": device,
                "num_cuts": cut.num_cuts,
                "num_subcircuits": cut.num_subcircuits,
                "num_variants": num_variants,
                "num_body_passes": batched_report.num_body_passes,
                "serial_seconds": serial_seconds,
                "batched_seconds": batched_seconds,
                "speedup": speedup,
                "max_abs_error": float(worst),
            }
        )
        rows.append(
            (
                f"{_BENCHMARK}-{qubits}",
                device,
                cut.num_cuts,
                num_variants,
                batched_report.num_body_passes,
                f"{serial_seconds * 1000:.2f}",
                f"{batched_seconds * 1000:.2f}",
                f"{speedup:.1f}x",
            )
        )

    aggregate = total_serial / total_batched
    document = {
        "generated_by": "bench_variant_batch.py",
        "benchmark": _BENCHMARK,
        "fusion_width": _FUSION_WIDTH,
        "sim_batch": _SIM_BATCH,
        "reps": _REPS,
        "min_speedup": _MIN_SPEEDUP,
        "gated": True,
        "total_serial_seconds": total_serial,
        "total_batched_seconds": total_batched,
        "speedup": aggregate,
        "configs": configs,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_variant_batch.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )
    rows.append(
        (
            "aggregate",
            "--",
            "--",
            "--",
            "--",
            f"{total_serial * 1000:.2f}",
            f"{total_batched * 1000:.2f}",
            f"{aggregate:.1f}x",
        )
    )
    report(
        "bench_variant_batch",
        f"Batched+fused variant simulation vs per-variant — {_BENCHMARK} "
        f"sweep, fusion width {_FUSION_WIDTH}, init batch {_SIM_BATCH}",
        ["config", "D", "cuts", "variants", "passes", "serial ms",
         "batched ms", "speedup"],
        rows,
    )

    assert aggregate >= _MIN_SPEEDUP, (
        f"batched variant evaluation speedup {aggregate:.2f}x is below "
        f"the {_MIN_SPEEDUP}x floor "
        f"(serial {total_serial:.3f}s, batched {total_batched:.3f}s)"
    )
