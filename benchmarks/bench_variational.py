"""Variational warm path: SPSA MaxCut with rebinds vs naive re-pipelining.

The workload the warm path exists for: a QAOA MaxCut optimizer evaluates
the *same circuit structure* at two SPSA probe points per iteration.

* **naive** — what every probe cost before PR 7: a fresh
  :class:`~repro.core.CutQC` per probe, re-running cut search, variant
  planning, fusion and evaluation from scratch;
* **warm** — one :class:`~repro.core.VariationalSession`: the cut is
  found once (the reported warm-up), then each probe is a ``rebind``
  that re-fuses only blocks whose angles moved and reuses every
  untouched term tensor.

Both phases evaluate the *identical* probe sequence (the warm phase runs
the real adaptive SPSA loop and records its probes; the naive phase
replays them) and must agree on every cost to 1e-9 — the speedup is
measured on equal work.  The gated number is the steady-state per-probe
speedup: warm-up (the one cut search the session ever pays) is reported
separately, because amortizing it is exactly the feature.  Results land
in ``results/BENCH_variational.json`` (uploaded by CI) with the speedup
asserted against a conservative floor.
"""

import json
import os
import time

import numpy as np

from repro import CutQC, VariationalSession
from repro.core import spsa_gains
from repro.library.qaoa import (
    maxcut_cost,
    qaoa_maxcut,
    random_regular_graph,
    ring_graph,
)

from conftest import RESULTS_DIR, report

#: 3-regular MaxCut on 14 nodes over an 8-qubit budget: the cut search
#: (dense cost layer, 6 cuts) is the dominant naive per-probe cost.
_QUBITS = int(os.environ.get("REPRO_BENCH_VAR_QUBITS", "14"))
_DEVICE = int(os.environ.get("REPRO_BENCH_VAR_DEVICE", "8"))
_DEGREE = int(os.environ.get("REPRO_BENCH_VAR_DEGREE", "3"))
_LAYERS = int(os.environ.get("REPRO_BENCH_VAR_LAYERS", "1"))
_ITERATIONS = int(os.environ.get("REPRO_BENCH_VAR_ITERATIONS", "4"))
_SEED = int(os.environ.get("REPRO_BENCH_VAR_SEED", "7"))
#: Graph instance seed, separate from the SPSA stream: seed 1 yields a
#: 3-regular instance whose branch-and-bound search is genuinely hard
#: (~3s on the reference machine) — the cost the warm path amortizes.
_GRAPH_SEED = int(os.environ.get("REPRO_BENCH_VAR_GRAPH_SEED", "1"))
#: Assertion floor for steady-state warm-vs-naive per probe (reference
#: machine measures ~60x: ~3s of cut search skipped per probe).
_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_VAR_MIN_SPEEDUP", "5.0"))


def _edges():
    if _DEGREE:
        return random_regular_graph(_QUBITS, degree=_DEGREE, seed=_GRAPH_SEED)
    return ring_graph(_QUBITS)


def _flat(edges, theta):
    return qaoa_maxcut(
        _QUBITS, edges, layers=_LAYERS, parameters=list(theta)
    ).parameters()


def test_variational_warm_vs_naive():
    edges = _edges()
    rng = np.random.default_rng(_SEED)
    theta = rng.uniform(0.1, np.pi - 0.1, size=2 * _LAYERS)

    # -- warm: one session, the real adaptive SPSA loop ----------------
    warmup_began = time.perf_counter()
    session = VariationalSession(
        qaoa_maxcut(_QUBITS, edges, layers=_LAYERS, parameters=list(theta)),
        max_subcircuit_qubits=_DEVICE,
    )
    session.rebind(_flat(edges, theta))
    initial_cost = maxcut_cost(session.probabilities(), edges, _QUBITS)
    warmup_seconds = time.perf_counter() - warmup_began

    probes = []  # (theta, cost) pairs, replayed by the naive phase
    best_cost = initial_cost
    warm_began = time.perf_counter()
    for k in range(_ITERATIONS):
        a_k, c_k = spsa_gains(k)
        delta = rng.choice((-1.0, 1.0), size=theta.size)
        costs = []
        for probe in (theta + c_k * delta, theta - c_k * delta):
            session.rebind(_flat(edges, probe))
            cost = maxcut_cost(session.probabilities(), edges, _QUBITS)
            probes.append((probe, cost))
            costs.append(cost)
        best_cost = max(best_cost, *costs)
        theta = theta + a_k * (costs[0] - costs[1]) / (2 * c_k) * delta
    warm_seconds = time.perf_counter() - warm_began
    summary = session.summary()

    # -- naive: a fresh pipeline per probe, identical work -------------
    naive_began = time.perf_counter()
    for probe, warm_cost in probes:
        pipeline = CutQC(
            qaoa_maxcut(
                _QUBITS, edges, layers=_LAYERS, parameters=list(probe)
            ),
            max_subcircuit_qubits=_DEVICE,
        )
        cost = maxcut_cost(
            pipeline.fd_query().probabilities, edges, _QUBITS
        )
        assert abs(cost - warm_cost) < 1e-9, (
            f"warm/naive cost mismatch: {warm_cost} vs {cost}"
        )
    naive_seconds = time.perf_counter() - naive_began

    num_probes = len(probes)
    warm_per_probe = warm_seconds / num_probes
    naive_per_probe = naive_seconds / num_probes
    speedup = naive_per_probe / warm_per_probe
    total_speedup = naive_seconds / (warmup_seconds + warm_seconds)
    rows = [
        ("naive (pipeline per probe)", num_probes,
         f"{naive_seconds:.3f}", f"{naive_per_probe:.4f}", "--"),
        ("warm (one session, rebinds)", num_probes,
         f"{warm_seconds:.3f}", f"{warm_per_probe:.4f}",
         f"{speedup:.2f}x"),
        ("warm incl. one-time warm-up", num_probes,
         f"{warmup_seconds + warm_seconds:.3f}", "--",
         f"{total_speedup:.2f}x"),
    ]
    report(
        "bench_variational",
        f"SPSA MaxCut qaoa-{_QUBITS} ({_DEGREE}-regular) on "
        f"{_DEVICE}-qubit budget, {_ITERATIONS} iterations "
        f"({num_probes} probes)",
        ["mode", "probes", "total s", "s/probe", "speedup"],
        rows,
    )

    document = {
        "generated_by": "bench_variational.py",
        "qubits": _QUBITS,
        "device_size": _DEVICE,
        "degree": _DEGREE,
        "layers": _LAYERS,
        "iterations": _ITERATIONS,
        "probes": num_probes,
        "naive_seconds": naive_seconds,
        "warm_seconds": warm_seconds,
        "warmup_seconds": warmup_seconds,
        "seconds_per_probe_naive": naive_per_probe,
        "seconds_per_probe_warm": warm_per_probe,
        "speedup": speedup,
        "total_speedup": total_speedup,
        "min_speedup": _MIN_SPEEDUP,
        "initial_cost": initial_cost,
        "best_cost": best_cost,
        "session": summary,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_variational.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )

    # The warm path must prove its reuse, not just win on time: the cut
    # was obtained exactly once across every probe ...
    assert summary["cut_cache_hits"] == summary["iterations"] - 1
    # ... and the fusion memo reused blocks across rebinds.
    assert summary["fusion_blocks_built"] < summary["fusion_blocks_total"]
    assert best_cost >= initial_cost - 1e-9
    assert speedup >= _MIN_SPEEDUP, (
        f"warm speedup {speedup:.2f}x below floor {_MIN_SPEEDUP}x "
        f"(naive {naive_per_probe:.4f}s/probe, warm "
        f"{warm_per_probe:.4f}s/probe)"
    )
