"""Figure 8: DD builds a blurred landscape of a 4-qubit supremacy circuit.

Cutting a 2x2 supremacy circuit onto 3-qubit devices, each DD recursion
zooms into the highest-probability bin; the reconstructed approximation
approaches the ground-truth landscape (chi^2 decreases monotonically-ish
with recursions).
"""


from repro import CutQC, simulate_probabilities
from repro.library import supremacy
from repro.metrics import chi_square_loss

from conftest import report


def _run():
    circuit = supremacy(4, seed=0)
    truth = simulate_probabilities(circuit)
    pipeline = CutQC(circuit, max_subcircuit_qubits=3)
    query = pipeline.dd_query(max_active_qubits=2, max_recursions=1)
    losses = [chi_square_loss(query.approximate_distribution(), truth)]
    for _ in range(3):
        query.step()
        losses.append(chi_square_loss(query.approximate_distribution(), truth))
    return losses


def test_fig8_dd_supremacy_landscape(benchmark):
    losses = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        (index + 1, f"{loss:.4f}")
        for index, loss in enumerate(losses)
    ]
    report(
        "fig8",
        "Fig. 8 — DD on 4-qubit supremacy with 3-qubit devices",
        ["recursion", "chi^2 vs ground truth"],
        rows,
    )
    assert losses[-1] < losses[0], "more recursions -> closer landscape"
