"""Job-service throughput: warm-vs-cold latency and queries/sec.

The serving claim (Tangram, applied to CutQC): reusing warm artifacts —
the cut solution and the evaluated subcircuit tensors — dominates
end-to-end job latency.  This bench measures it through the real HTTP
stack:

* **cold**: first submission of a circuit; the service runs cut search,
  variant evaluation and the query, checkpointing each stage;
* **warm**: identical resubmission; cut and evaluation restore from the
  content-addressed store and only the query executes;
* **throughput**: a stream of warm jobs, measured as queries/sec.

Results land in ``results/BENCH_service.json`` (uploaded by CI) with the
measured speedup asserted against a conservative floor.
"""

import json
import os
import tempfile
import time

from repro.service import JobServer, request_json

from conftest import RESULTS_DIR, report

#: supremacy-9 on a 6-qubit budget: the cut search (branch and bound over
#: a 3x3 grid) and the 6-cut variant evaluation give the cold path real
#: work to skip — reference machine measures >10x warm-vs-cold.
_BENCHMARK = os.environ.get("REPRO_BENCH_SERVICE_BENCHMARK", "supremacy")
_QUBITS = int(os.environ.get("REPRO_BENCH_SERVICE_QUBITS", "9"))
_DEVICE = int(os.environ.get("REPRO_BENCH_SERVICE_DEVICE", "6"))
_WARM_QUERIES = int(os.environ.get("REPRO_BENCH_SERVICE_WARM_QUERIES", "20"))
#: Assertion floor for warm-vs-cold (reference machine measures far more);
#: loaded CI runners measure timing noise, not regressions.
_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SERVICE_MIN_SPEEDUP", "2.0"))

_JOB = {
    "circuit": {"benchmark": _BENCHMARK, "qubits": _QUBITS, "seed": 0},
    "device_size": _DEVICE,
    "query": {"type": "fd", "top": 3},
}


def _run_job(server, payload, timeout=300.0):
    """Submit, poll to completion, return (status document, wall seconds)."""
    began = time.perf_counter()
    created = request_json("POST", f"{server.url}/jobs", payload=payload)
    deadline = time.monotonic() + timeout
    while True:
        document = request_json("GET", f"{server.url}/jobs/{created['job_id']}")
        if document["state"] in ("done", "failed", "cancelled"):
            break
        assert time.monotonic() < deadline, "job stuck"
        time.sleep(0.005)
    wall = time.perf_counter() - began
    assert document["state"] == "done", document.get("error")
    return document, wall


def test_service_warm_vs_cold_throughput():
    with JobServer(
        store_dir=tempfile.mkdtemp(prefix="cutqc-bench-store-"),
        port=0,
        workers=2,
    ).start() as server:
        cold, cold_wall = _run_job(server, _JOB)
        assert cold["cache_hits"] == {"cut": False, "evaluate": False}

        warm, warm_wall = _run_job(server, _JOB)
        # The warm path must actually be warm: both expensive stages
        # served by the artifact store.
        assert warm["cache_hits"] == {"cut": True, "evaluate": True}

        cold_result = request_json(
            "GET", f"{server.url}/jobs/{cold['job_id']}/result"
        )
        warm_result = request_json(
            "GET", f"{server.url}/jobs/{warm['job_id']}/result"
        )
        assert (
            warm_result["result"]["top_states"]
            == cold_result["result"]["top_states"]
        )

        # Stage-level accounting: warm jobs skip cut + evaluate compute.
        cold_stage = cold["timings"]
        warm_stage = warm["timings"]
        speedup = cold_wall / warm_wall

        # Throughput: a stream of warm queries through the HTTP stack.
        began = time.perf_counter()
        for _ in range(_WARM_QUERIES):
            document, _ = _run_job(server, _JOB)
            assert document["cache_hits"]["evaluate"] is True
        stream_seconds = time.perf_counter() - began
        queries_per_second = _WARM_QUERIES / stream_seconds

        stats = request_json("GET", f"{server.url}/stats")

    assert speedup >= _MIN_SPEEDUP, (
        f"warm speedup {speedup:.2f}x below floor {_MIN_SPEEDUP}x "
        f"(cold {cold_wall:.3f}s, warm {warm_wall:.3f}s)"
    )

    document = {
        "generated_by": "bench_service_throughput.py",
        "benchmark": _BENCHMARK,
        "qubits": _QUBITS,
        "device_size": _DEVICE,
        "cold": {
            "wall_seconds": cold_wall,
            "cut_seconds": cold_stage.get("cut"),
            "evaluate_seconds": cold_stage.get("evaluate"),
            "query_seconds": cold_stage.get("query"),
            "cache_hits": cold["cache_hits"],
        },
        "warm": {
            "wall_seconds": warm_wall,
            "cut_seconds": warm_stage.get("cut"),
            "evaluate_seconds": warm_stage.get("evaluate"),
            "query_seconds": warm_stage.get("query"),
            "cache_hits": warm["cache_hits"],
        },
        "speedup": speedup,
        "warm_queries": _WARM_QUERIES,
        "queries_per_second": queries_per_second,
        "stage_cache": stats["cache"],
        "store": {
            "hits": stats["store"]["hits"],
            "misses": stats["store"]["misses"],
            "corrupt": stats["store"]["corrupt"],
        },
    }
    # The artifact is shared with bench_service_load.py: it owns the
    # "load" section, this bench owns everything else — preserve theirs.
    path = RESULTS_DIR / "BENCH_service.json"
    try:
        existing = json.loads(path.read_text())
    except (OSError, ValueError):
        existing = {}
    if "load" in existing:
        document["load"] = existing["load"]
    RESULTS_DIR.mkdir(exist_ok=True)
    path.write_text(json.dumps(document, indent=2) + "\n")
    report(
        "bench_service",
        f"Job service — {_BENCHMARK}-{_QUBITS} on {_DEVICE}-qubit budget, "
        f"FD query over HTTP",
        ["path", "wall s", "cut s", "evaluate s", "query s"],
        [
            ("cold (first submission)", f"{cold_wall:.3f}",
             f"{cold_stage.get('cut', 0):.3f}",
             f"{cold_stage.get('evaluate', 0):.3f}",
             f"{cold_stage.get('query', 0):.3f}"),
            ("warm (artifact store)", f"{warm_wall:.3f}",
             f"{warm_stage.get('cut', 0):.3f}",
             f"{warm_stage.get('evaluate', 0):.3f}",
             f"{warm_stage.get('query', 0):.3f}"),
            ("speedup", f"{speedup:.1f}x", "--", "--", "--"),
            (f"warm throughput ({_WARM_QUERIES} jobs)",
             f"{queries_per_second:.1f} q/s", "--", "--", "--"),
        ],
    )
