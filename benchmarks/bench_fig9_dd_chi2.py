"""Figure 9: DD chi^2 vs recursions for medium circuits on a 15-qubit QPU.

16-qubit benchmarks are cut onto a 15-qubit budget (system memory capped
at 10 active qubits, like the paper) and queried with DD.  Solid-line
reading: BV pins its single solution in one recursion, HWEA locates its
two maximally-entangled solution states quickly, supremacy's dense output
keeps improving with every recursion.  Dotted-line reading: cumulative DD
runtime stays far below full classical simulation of the same circuit.
"""

import time


from repro import CutQC, simulate_probabilities
from repro.library import get_benchmark
from repro.metrics import chi_square_loss

from conftest import report

_CASES = (
    ("bv", 16, {}),
    ("hwea", 16, {}),
    ("supremacy", 16, {"seed": 0, "depth": 8}),
)
_RECURSIONS = 6
_MEMORY_CAP = 10  # max active qubits, the paper's "10-qubit memory"


def _run_case(name, size, kwargs):
    circuit = get_benchmark(name, size, **kwargs)
    began = time.perf_counter()
    truth = simulate_probabilities(circuit)
    sim_seconds = time.perf_counter() - began

    pipeline = CutQC(circuit, max_subcircuit_qubits=15)
    pipeline.evaluate()
    query = pipeline.dd_query(max_active_qubits=_MEMORY_CAP, max_recursions=1)
    losses = [chi_square_loss(query.approximate_distribution(), truth)]
    cumulative = [query.recursions[-1].elapsed_seconds]
    for _ in range(_RECURSIONS - 1):
        try:
            query.step()
        except RuntimeError:
            break  # fully resolved (chi^2 reached 0): stop like the paper
        losses.append(chi_square_loss(query.approximate_distribution(), truth))
        cumulative.append(cumulative[-1] + query.recursions[-1].elapsed_seconds)
    return losses, cumulative, sim_seconds


def _sweep():
    results = {}
    for name, size, kwargs in _CASES:
        results[(name, size)] = _run_case(name, size, kwargs)
    return results


def test_fig9_dd_chi2_evolution(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = []
    for (name, size), (losses, cumulative, sim_seconds) in results.items():
        for recursion, (loss, elapsed) in enumerate(zip(losses, cumulative), 1):
            rows.append(
                (name, size, recursion, f"{loss:.5f}", f"{elapsed:.3f}",
                 f"{sim_seconds:.3f}")
            )
    report(
        "fig9",
        "Fig. 9 — DD chi^2 + cumulative runtime, 16q circuits on 15q QPU "
        f"(memory cap {_MEMORY_CAP} active qubits)",
        ["benchmark", "qubits", "recursion", "chi^2", "cumulative DD s",
         "full sim s"],
        rows,
    )
    for (name, size), (losses, cumulative, sim_seconds) in results.items():
        assert losses[-1] <= losses[0] + 1e-9, name
        # BV's sparse output resolves in a couple of recursions (paper:
        # "BV has exactly one solution state ... just a few recursions");
        # recursion 1 still spreads the solution bin over merged qubits.
        if name == "bv":
            assert losses[1] < 1e-6
    # DD per-recursion runtime is "negligible compared with the purely
    # classical simulation runtime" (paper) — allow a generous factor.
    for (name, size), (losses, cumulative, sim_seconds) in results.items():
        assert cumulative[-1] < 5 * sim_seconds + 5.0
