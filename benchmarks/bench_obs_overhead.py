"""Tracing overhead: the instrumented pipeline vs the no-op path.

PR 8 threads spans through every pipeline stage (cut search, fused
simulation, variant batching, contraction, queries).  The design claim
is that the *disabled* path is allocation-free — ``trace.span`` returns
a shared no-op singleton when no root is active — and that the *enabled*
path stays within a few percent of it, because a whole traced run emits
only a few dozen spans (two clock reads each), not per-gate events.

Wall-clock noise on shared CI runners is heavy-tailed and drifts on the
scale of seconds, so the estimator is built to cancel both:

* runs come in adjacent **off/on pairs**, so slow drift hits both sides
  of a ratio equally;
* each side of a pair takes the **best of k** back-to-back runs, which
  discards scheduler-hiccup tails;
* the gated figure is the **median of the per-pair ratios**::

      speedup = median_i( best_off_i / best_on_i )   # 1.0 = free

``results/BENCH_obs.json`` records the figure; the floor (default 0.95,
i.e. <= 5% overhead; reference machine measures ~0-2%) is enforced here
and by ``tools/check_bench_regression.py`` against
``results/baselines.json``.
"""

import json
import os
import statistics
import time

from repro import CutQC
from repro.library import get_benchmark
from repro.obs import trace

from conftest import RESULTS_DIR, report

_QUBITS = int(os.environ.get("REPRO_BENCH_OBS_QUBITS", "22"))
_DEVICE = int(os.environ.get("REPRO_BENCH_OBS_DEVICE", "11"))
#: Number of adjacent off/on pairs; the gated figure is their median ratio.
_PAIRS = int(os.environ.get("REPRO_BENCH_OBS_PAIRS", "5"))
#: Back-to-back runs per side of a pair; each side scores its fastest.
_SAMPLES = int(os.environ.get("REPRO_BENCH_OBS_SAMPLES", "3"))
#: Floor on off/on: 0.95 == tracing may cost at most 5%.
_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_OBS_MIN_SPEEDUP", "0.95"))


def _run_pipeline() -> None:
    pipeline = CutQC(get_benchmark("bv", _QUBITS), max_subcircuit_qubits=_DEVICE)
    pipeline.cut()
    pipeline.evaluate()
    pipeline.fd_query()


def _timed(traced: bool) -> float:
    began = time.perf_counter()
    if traced:
        with trace.start("bench.obs_overhead"):
            _run_pipeline()
    else:
        _run_pipeline()
    return time.perf_counter() - began


def test_tracing_overhead_within_budget():
    # One untimed warm-up populates the process-wide fusion/geometry
    # memos so neither side pays first-touch compilation.
    _run_pipeline()

    pairs = []
    for _ in range(_PAIRS):
        best_off = min(_timed(traced=False) for _ in range(_SAMPLES))
        best_on = min(_timed(traced=True) for _ in range(_SAMPLES))
        pairs.append((best_off, best_on))

    off_seconds = statistics.median(off for off, _ in pairs)
    on_seconds = statistics.median(on for _, on in pairs)
    speedup = statistics.median(off / on for off, on in pairs)
    overhead = 1.0 / speedup - 1.0

    rows = [
        ("tracing off", _PAIRS * _SAMPLES, f"{off_seconds:.4f}", "--"),
        ("tracing on", _PAIRS * _SAMPLES, f"{on_seconds:.4f}",
         f"{100 * overhead:+.1f}%"),
    ]
    report(
        "bench_obs_overhead",
        f"Tracing overhead — bv-{_QUBITS} on {_DEVICE}-qubit budget, "
        f"median ratio of {_PAIRS} best-of-{_SAMPLES} off/on pairs",
        ["mode", "runs", "median s", "overhead"],
        rows,
    )

    document = {
        "generated_by": "bench_obs_overhead.py",
        "qubits": _QUBITS,
        "device_size": _DEVICE,
        "pairs": _PAIRS,
        "samples_per_side": _SAMPLES,
        "off_seconds": off_seconds,
        "on_seconds": on_seconds,
        "overhead": overhead,
        "speedup": speedup,
        "min_speedup": _MIN_SPEEDUP,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_obs.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )

    assert speedup >= _MIN_SPEEDUP, (
        f"tracing costs {100 * overhead:.1f}% "
        f"(median off {off_seconds:.4f}s vs on {on_seconds:.4f}s); "
        f"budget is {100 * (1 - _MIN_SPEEDUP):.0f}%"
    )
