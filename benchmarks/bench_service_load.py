"""Multi-tenant service under load: N replicas, mixed queries, p50/p99.

The durability/scale-out acceptance bench: two (or more) stateless API
servers share one artifact store and one job journal, a pool of client
threads floods them with a mixed workload — FD, streamed top-k, DD and
server-side variational jobs — spread across four tenants, and the bench
reports end-to-end latency percentiles and sustained queries/sec.

The workload runs *warm* (one cold job per distinct shape first), so the
number measures the serving layer — HTTP, fair queue, journal claims,
store restores — not cut search.  Results merge into the ``load``
section of ``results/BENCH_service.json`` (the cold/warm section is
owned by ``bench_service_throughput.py``); CI gates
``load.queries_per_second`` through ``results/baselines.json``.

Env knobs (capped / full profiles set these in ``run_benches.py``)::

    REPRO_BENCH_LOAD_JOBS      total jobs submitted        (default 200)
    REPRO_BENCH_LOAD_CLIENTS   concurrent client threads   (default 16)
    REPRO_BENCH_LOAD_REPLICAS  API servers on one store    (default 2)
    REPRO_BENCH_LOAD_WORKERS   scheduler workers/replica   (default 2)
    REPRO_BENCH_LOAD_MIN_QPS   sustained-throughput floor  (default 2.0)
"""

import json
import os
import tempfile
import threading
import time

from repro.service import ArtifactStore, JobServer, request_json

from conftest import RESULTS_DIR, report

_TOTAL_JOBS = int(os.environ.get("REPRO_BENCH_LOAD_JOBS", "200"))
_CLIENTS = int(os.environ.get("REPRO_BENCH_LOAD_CLIENTS", "16"))
_REPLICAS = int(os.environ.get("REPRO_BENCH_LOAD_REPLICAS", "2"))
_WORKERS = int(os.environ.get("REPRO_BENCH_LOAD_WORKERS", "2"))
_MIN_QPS = float(os.environ.get("REPRO_BENCH_LOAD_MIN_QPS", "2.0"))

_TENANTS = ("acme", "globex", "initech", "umbrella")
#: acme gets a 2x dispatch share; umbrella is capped to smoke-test
#: max_concurrent under real load.  Nobody has an admission quota — the
#: bench measures throughput, not rejections.
_TENANT_POLICIES = {
    "acme": {"weight": 2.0},
    "umbrella": {"weight": 1.0, "max_concurrent": 2},
}

_FD = {"circuit": {"benchmark": "bv", "qubits": 6, "seed": 0},
       "device_size": 5, "query": {"type": "fd", "top": 3}}
_TOP_K = {"circuit": {"benchmark": "bv", "qubits": 6, "seed": 0},
          "device_size": 5, "query": {"type": "top_k", "top": 3}}
_DD = {"circuit": {"benchmark": "bv", "qubits": 6, "seed": 0},
       "device_size": 5,
       "query": {"type": "dd", "active": 2, "recursions": 4, "top": 3}}
_VARIATIONAL = {"circuit": {"benchmark": "qaoa", "qubits": 6, "seed": 0},
                "device_size": 5,
                "query": {"type": "variational", "iterations": 2},
                "degree": 3}


def _job_mix(total):
    """The mixed workload: mostly FD, some top-k/DD, a few variational."""
    jobs = []
    for index in range(total):
        if index % 25 == 0:
            kind, payload = "variational", _VARIATIONAL
        elif index % 9 == 0:
            kind, payload = "dd", _DD
        elif index % 4 == 0:
            kind, payload = "top_k", _TOP_K
        else:
            kind, payload = "fd", _FD
        payload = json.loads(json.dumps(payload))  # deep copy
        payload["tenant"] = _TENANTS[index % len(_TENANTS)]
        jobs.append((index, kind, payload))
    return jobs


def _run_one(server, payload, timeout=600.0):
    """Submit + poll one job on one replica; returns (state, latency s)."""
    began = time.perf_counter()
    created = request_json("POST", f"{server.url}/jobs", payload=payload)
    deadline = time.monotonic() + timeout
    while True:
        document = request_json(
            "GET", f"{server.url}/jobs/{created['job_id']}"
        )
        if document["state"] in ("done", "failed", "cancelled"):
            return document, time.perf_counter() - began
        assert time.monotonic() < deadline, f"job stuck: {document}"
        time.sleep(0.005)


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def test_service_load_multi_tenant_multi_replica():
    store = ArtifactStore(tempfile.mkdtemp(prefix="cutqc-bench-load-"))
    servers = [
        JobServer(
            store=store, port=0, workers=_WORKERS,
            tenants=dict(_TENANT_POLICIES), journal_poll=0.05,
        ).start()
        for _ in range(_REPLICAS)
    ]
    try:
        # Warm every distinct artifact shape once so the measured phase
        # exercises the serving layer at steady state.
        for payload in (_FD, _DD, _VARIATIONAL):
            document, _ = _run_one(servers[0], dict(payload, tenant="acme"))
            assert document["state"] == "done", document.get("error")

        jobs = _job_mix(_TOTAL_JOBS)
        cursor = {"next": 0}
        cursor_lock = threading.Lock()
        results = []
        results_lock = threading.Lock()
        failures = []

        def client_loop():
            while True:
                with cursor_lock:
                    position = cursor["next"]
                    if position >= len(jobs):
                        return
                    cursor["next"] = position + 1
                index, kind, payload = jobs[position]
                server = servers[index % len(servers)]
                try:
                    document, latency = _run_one(server, payload)
                except Exception as error:  # noqa: BLE001 - report, don't hang
                    with results_lock:
                        failures.append(f"{kind}: {error}")
                    return
                with results_lock:
                    if document["state"] != "done":
                        failures.append(
                            f"{kind}: {document['state']} "
                            f"({document.get('error')})"
                        )
                    results.append(
                        (kind, payload["tenant"], latency)
                    )

        clients = [
            threading.Thread(target=client_loop, name=f"client-{i}")
            for i in range(_CLIENTS)
        ]
        began = time.perf_counter()
        for client in clients:
            client.start()
        for client in clients:
            client.join()
        wall_seconds = time.perf_counter() - began

        stats = request_json("GET", f"{servers[0].url}/stats")
    finally:
        for server in servers:
            server.close()

    assert not failures, failures[:5]
    assert len(results) == _TOTAL_JOBS
    queries_per_second = _TOTAL_JOBS / wall_seconds
    latencies = sorted(latency for _, _, latency in results)
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)

    by_tenant = {}
    by_kind = {}
    for kind, tenant, latency in results:
        by_tenant[tenant] = by_tenant.get(tenant, 0) + 1
        by_kind[kind] = by_kind.get(kind, 0) + 1
    assert set(by_tenant) == set(_TENANTS)
    assert set(by_kind) == {"fd", "top_k", "dd", "variational"}

    assert queries_per_second >= _MIN_QPS, (
        f"{queries_per_second:.2f} q/s below floor {_MIN_QPS} "
        f"({_TOTAL_JOBS} jobs in {wall_seconds:.1f}s)"
    )

    load = {
        "generated_by": "bench_service_load.py",
        "jobs": _TOTAL_JOBS,
        "clients": _CLIENTS,
        "replicas": _REPLICAS,
        "workers_per_replica": _WORKERS,
        "tenants": sorted(by_tenant),
        "jobs_by_tenant": by_tenant,
        "jobs_by_kind": by_kind,
        "wall_seconds": wall_seconds,
        "queries_per_second": queries_per_second,
        "latency_p50_seconds": p50,
        "latency_p99_seconds": p99,
        "latency_max_seconds": latencies[-1],
        "scheduler_jobs": stats["jobs"]["by_state"],
    }

    # Merge into the artifact bench_service_throughput.py owns: the two
    # benches share one file, each updating only its own section.
    path = RESULTS_DIR / "BENCH_service.json"
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError):
        document = {}
    document["load"] = load
    RESULTS_DIR.mkdir(exist_ok=True)
    path.write_text(json.dumps(document, indent=2) + "\n")

    report(
        "bench_service_load",
        f"Job service under load — {_TOTAL_JOBS} mixed jobs, "
        f"{len(_TENANTS)} tenants, {_REPLICAS} replicas x {_WORKERS} workers",
        ["metric", "value"],
        [
            ("jobs completed", str(len(results))),
            ("mix", ", ".join(
                f"{kind}={count}" for kind, count in sorted(by_kind.items())
            )),
            ("throughput", f"{queries_per_second:.2f} q/s"),
            ("latency p50", f"{p50 * 1000:.0f} ms"),
            ("latency p99", f"{p99 * 1000:.0f} ms"),
            ("latency max", f"{latencies[-1] * 1000:.0f} ms"),
            ("wall", f"{wall_seconds:.1f} s"),
        ],
    )
