"""§6.4 comparison: CutQC vs Feynman-path (qubit-bipartition) simulation.

The paper argues the path-sum alternatives ([10], [28]) "do not scale
well": their cost is exponential in the number of gates crossing the
qubit bipartition, which grows with circuit depth, while CutQC's
postprocessing is exponential only in the number of *wire cuts* the MIP
finds.  We measure both on supremacy-style workloads of growing depth:
the crossing-gate count climbs with depth (and the path count 2^g
explodes), while the wire-cut count the searcher needs stays flat.
"""

import time

import numpy as np

from repro import CutQC, simulate_probabilities
from repro.cutting import CutSearchError
from repro.library import supremacy_grid
from repro.sim.feynman import FeynmanPathSimulator

from conftest import report


def _one(depth):
    circuit = supremacy_grid(2, 4, depth=depth, seed=0)
    truth = simulate_probabilities(circuit)

    sim = FeynmanPathSimulator(max_paths=1 << 16)
    paths = sim.num_paths(circuit)
    if paths <= sim.max_paths:
        began = time.perf_counter()
        feynman_probs = sim.probabilities(circuit)
        feynman_seconds = f"{time.perf_counter() - began:.3f}"
        assert np.allclose(feynman_probs, truth, atol=1e-8)
    else:
        feynman_seconds = "--"

    try:
        pipeline = CutQC(circuit, max_subcircuit_qubits=6)
        cut = pipeline.cut()
        pipeline.evaluate()
        result = pipeline.fd_query(strategy="tensor_network")
        assert np.allclose(result.probabilities, truth, atol=1e-8)
        cuts = cut.num_cuts
        cutqc_seconds = f"{result.stats.elapsed_seconds:.3f}"
    except CutSearchError:
        cuts, cutqc_seconds = "--", "--"

    crossings = len(sim.crossing_gates(circuit))
    return (depth, crossings, paths, feynman_seconds, cuts, cutqc_seconds)


def test_feynman_vs_cutqc_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: [_one(depth) for depth in (8, 12, 16, 20, 24)],
        rounds=1,
        iterations=1,
    )
    report(
        "ablation_feynman",
        "§6.4 — Feynman-path baseline vs CutQC on 2x4 supremacy, growing depth",
        ["depth", "crossing gates", "paths", "feynman s", "wire cuts",
         "cutqc postprocess s"],
        rows,
    )
    # Path count grows with depth ...
    paths = [row[2] for row in rows]
    assert paths[-1] > paths[0]
    # ... and eventually exceeds any budget, while the wire-cut count the
    # MIP needs stays bounded by the 10-cut budget whenever feasible.
    cut_counts = [row[4] for row in rows if row[4] != "--"]
    assert cut_counts and max(cut_counts) <= 10
