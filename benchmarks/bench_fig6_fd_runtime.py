"""Figure 6 + §6.1 speedups: FD postprocessing runtime vs classical sim.

The paper cuts each benchmark onto 10/15/20/25-qubit QPUs and compares
CutQC's classical postprocessing time against full statevector simulation
(quantum time is ignored: §5.1).  We measure the same comparison at
laptop scale (6/8/10-qubit virtual QPUs, circuits to ~2x the device), and
regenerate the paper-scale *shape* with the Eq. 14 cost model, which is
the very estimator the paper's MIP minimizes.

Reproduction targets: CutQC beats simulation for cheaply-cuttable
benchmarks (BV/HWEA/adder by orders of magnitude), densely connected
benchmarks (supremacy/AQFT/Grover) cost more postprocessing and can lose,
and some configurations cannot be cut within 10 cuts / 5 subcircuits at
all ("--" rows, like the paper's early-terminated curves).
"""

import json
import os
import time

import numpy as np

from repro import CutQC, simulate_probabilities
from repro.cutting import CutSearchError, find_cuts
from repro.library import get_benchmark, valid_sizes
from repro.postprocess import (
    classical_simulation_flops,
    estimate_speedup,
    reconstruction_flops,
)

from conftest import RESULTS_DIR, report

# CI smoke runs cap the sweep via these env vars (see .github/workflows).
_DEVICES = tuple(
    int(d) for d in os.environ.get("REPRO_BENCH_DEVICES", "6,8,10").split(",")
)
_BENCHMARKS = tuple(
    os.environ.get(
        "REPRO_BENCH_BENCHMARKS", "supremacy,aqft,grover,bv,adder,hwea"
    ).split(",")
)
#: Contraction strategy under test (the engine's auto picks per workload).
_STRATEGY = os.environ.get("REPRO_BENCH_STRATEGY", "auto")
#: Skip configs whose Eq. 14 estimate exceeds this many multiplications —
#: same spirit as the paper capping runs at 10 cuts / 5 subcircuits.
_FLOP_BUDGET = 2e9
_VARIANT_BUDGET = 25_000


def _sizes_for(name: str, device: int):
    low, high = device + 1, min(2 * device + 2, 15)
    sizes = valid_sizes(name, low, high, even_only=True)
    picked = []
    if sizes:
        picked.append(sizes[0])
        if len(sizes) > 1:
            picked.append(sizes[-1])
    return picked


def _kwargs(name: str):
    return {"seed": 0, "depth": 8} if name == "supremacy" else {}


def _measure_config(name: str, size: int, device: int):
    circuit = get_benchmark(name, size, **_kwargs(name))
    try:
        pipeline = CutQC(
            circuit, max_subcircuit_qubits=device, strategy=_STRATEGY
        )
        cut = pipeline.cut()
    except CutSearchError:
        return (name, size, device, "--", "--", "--", "--", "uncuttable")
    if reconstruction_flops(cut) > _FLOP_BUDGET:
        return (name, size, device, cut.num_cuts, "--", "--", "--", "too costly")
    variants = sum(
        3 ** len(s.meas_lines) * 4 ** len(s.init_lines) for s in cut.subcircuits
    )
    if variants > _VARIANT_BUDGET:
        return (name, size, device, cut.num_cuts, "--", "--", "--", "too many variants")
    pipeline.evaluate()
    result = pipeline.fd_query()
    began = time.perf_counter()
    truth = simulate_probabilities(circuit)
    sim_seconds = time.perf_counter() - began
    assert np.allclose(result.probabilities, truth, atol=1e-6)
    post = result.stats.elapsed_seconds
    speedup = sim_seconds / post if post > 0 else float("inf")
    return (
        name,
        size,
        device,
        cut.num_cuts,
        f"{post:.3f}",
        f"{sim_seconds:.3f}",
        f"{speedup:.1f}x",
        "ok",
    )


def _measured_sweep():
    rows = []
    for device in _DEVICES:
        for name in _BENCHMARKS:
            for size in _sizes_for(name, device):
                rows.append(_measure_config(name, size, device))
    return rows


def test_fig6_fd_postprocessing_vs_simulation(benchmark):
    rows = benchmark.pedantic(_measured_sweep, rounds=1, iterations=1)
    report(
        "fig6_measured",
        "Fig. 6 (measured, scaled) — FD postprocess vs statevector sim",
        ["benchmark", "qubits", "device", "cuts", "postprocess s",
         "simulation s", "speedup", "status"],
        rows,
    )
    ok = [row for row in rows if row[7] == "ok"]
    assert ok, "at least some configurations must be runnable"
    # The paper's qualitative claims at our scale:
    speedups = {
        (row[0], row[1], row[2]): float(row[6].rstrip("x")) for row in ok
    }
    bv_like = [v for (n, _, _), v in speedups.items() if n in ("bv", "hwea")]
    document = {
        "generated_by": "bench_fig6_fd_runtime.py",
        "devices": list(_DEVICES),
        "benchmarks": list(_BENCHMARKS),
        "strategy": _STRATEGY,
        "configs_run": len(rows),
        "configs_ok": len(ok),
        "speedup": max(bv_like) if bv_like else 0.0,
        "rows": [
            {
                "benchmark": row[0],
                "qubits": row[1],
                "device": row[2],
                "cuts": row[3],
                "postprocess_seconds": row[4],
                "simulation_seconds": row[5],
                "speedup": row[6],
                "status": row[7],
            }
            for row in rows
        ],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_fd.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )
    assert bv_like and max(bv_like) > 1.0, "cheap cuts must beat simulation"


def test_fig6_paper_scale_cost_model(benchmark):
    """Eq. 14 model at the paper's scale: 10-25q QPUs, circuits to 35q."""

    def sweep():
        rows = []
        for device in (10, 15, 20, 25):
            for name in _BENCHMARKS:
                sizes = valid_sizes(name, device + 1, 35, even_only=True)
                for size in sizes[:: max(1, len(sizes) // 3)]:
                    circuit = get_benchmark(name, size, **_kwargs(name))
                    try:
                        solution = find_cuts(circuit, device)
                    except CutSearchError:
                        rows.append((name, size, device, "--", "--", "--"))
                        continue
                    cut = solution.apply(circuit)
                    rows.append(
                        (
                            name,
                            size,
                            device,
                            cut.num_cuts,
                            f"{reconstruction_flops(cut):.2e}",
                            f"{estimate_speedup(cut):.1e}",
                        )
                    )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "fig6_model",
        "Fig. 6 (paper scale, Eq. 14 cost model) — modelled speedup",
        ["benchmark", "qubits", "device", "cuts", "build FLOPs", "speedup"],
        rows,
    )
    modelled = [
        (row[0], float(row[5].rstrip())) for row in rows if row[5] != "--"
    ]
    assert modelled
    # §6.1 headline: 60X-8600X average wall-clock speedups.  A pure FLOP
    # ratio cannot capture the paper's constant factors (parallel C+MKL
    # reconstruction vs Python Qiskit simulation), so the model target is
    # the *shape*: clear multi-x wins for the cheaply cuttable circuits,
    # growing with circuit size.
    best = max(value for _, value in modelled)
    assert best > 30.0
    bv_rows = sorted(
        (row[1], float(row[5])) for row in rows if row[0] == "bv" and row[5] != "--"
    )
    assert bv_rows[-1][1] > bv_rows[0][1] / 2  # no collapse at scale
