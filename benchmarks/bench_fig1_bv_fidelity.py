"""Figure 1: BV fidelity collapses as (noisier) devices grow.

The paper runs BV instances sized to half the device on IBM hardware and
shows fidelity (correct-answer probability) dropping from ~0.9 on 5
qubits to <1% on 20 qubits.  We reproduce the trend on the virtual device
ladder (error rates grow with size, routing adds depth); the largest
53-qubit point is out of laptop-simulation reach (see DESIGN.md).
"""


from repro.devices import fig1_device_suite
from repro.library import bv, bv_solution
from repro.metrics import fidelity
from repro.utils import bitstring_to_index

from conftest import report


def _sweep():
    rows = []
    for device in fig1_device_suite(seed=11):
        problem_size = max(2, device.num_qubits // 2)
        circuit = bv(problem_size)
        observed = device.run(circuit, shots=8192, trajectories=16)
        solution = bitstring_to_index(bv_solution(problem_size))
        rows.append(
            (
                device.name,
                device.num_qubits,
                problem_size,
                f"{device.noise.error_2q:.4f}",
                f"{fidelity(observed, solution):.4f}",
            )
        )
    return rows


def test_fig1_bv_fidelity_vs_device_size(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(
        "fig1",
        "Fig. 1 — BV at half device size: fidelity vs device size",
        ["device", "device qubits", "BV qubits", "2q error", "fidelity"],
        rows,
    )
    fidelities = [float(row[4]) for row in rows]
    # The paper's finding: monotone collapse with device size.
    assert fidelities[0] > fidelities[-1]
    assert fidelities[0] > 0.5
    assert all(b <= a + 0.05 for a, b in zip(fidelities, fidelities[1:]))
