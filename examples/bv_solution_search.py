"""Dynamic definition: locate a BV solution state without full storage.

Reproduces the narrative of the paper's Fig. 7 at a larger size: a
16-qubit Bernstein-Vazirani circuit is cut onto a 10-qubit budget and its
single solution state is located by the DD query using only 2-qubit-wide
probability bins per recursion — the full 2^16 distribution is never
materialized.

Run:  python examples/bv_solution_search.py
"""

from repro import CutQC
from repro.library import bv, bv_solution


def main() -> None:
    num_qubits = 16
    device_size = 10
    circuit = bv(num_qubits)
    print(f"BV circuit: {num_qubits} qubits; hidden string all-ones; "
          f"device budget {device_size} qubits")

    pipeline = CutQC(circuit, max_subcircuit_qubits=device_size)
    cut = pipeline.cut()
    print(cut.summary())
    print()

    active_per_recursion = 2
    query = pipeline.dd_query(
        max_active_qubits=active_per_recursion,
        max_recursions=num_qubits // active_per_recursion,
    )

    for recursion in query.recursions:
        resolved = "".join(
            str(recursion.fixed[w]) if w in recursion.fixed else "?"
            for w in range(num_qubits)
        )
        best_bin = int(recursion.probabilities.argmax())
        print(
            f"recursion {recursion.index + 1}: zoomed={resolved} "
            f"active={recursion.active} "
            f"-> best bin {best_bin:0{len(recursion.active)}b} "
            f"(p = {recursion.probabilities.max():.4f}, "
            f"{recursion.elapsed_seconds * 1e3:.1f} ms)"
        )

    states = query.solution_states(threshold=0.5)
    expected = bv_solution(num_qubits)
    print(f"\nlocated solution : {states[0][0]} (p = {states[0][1]:.6f})")
    print(f"expected solution: {expected}")
    assert states[0][0] == expected
    print("solution located with only "
          f"2^{active_per_recursion}-bin recursions — no 2^{num_qubits} "
          "vector was ever stored.")


if __name__ == "__main__":
    main()
