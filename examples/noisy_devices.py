"""CutQC on a small QPU beats direct execution on a big one (Fig. 11).

A 6-qubit BV circuit is (a) executed directly on the virtual 20-qubit
Johannesburg device and (b) cut onto the virtual 5-qubit Bogota device and
reconstructed.  Bigger NISQ devices are noisier and routing makes the
uncut circuit deeper, so the CutQC route yields a lower chi^2 loss —
the paper's headline fidelity result.

Run:  python examples/noisy_devices.py
"""

import numpy as np

from repro import CutQC, bogota, johannesburg, simulate_probabilities
from repro.library import bv, bv_solution
from repro.metrics import chi_square_loss, chi_square_reduction
from repro.utils import bitstring_to_index


def main() -> None:
    circuit = bv(6)
    truth = simulate_probabilities(circuit)
    solution = bitstring_to_index(bv_solution(6))

    large = johannesburg(seed=7)
    small = bogota(seed=7)
    print("devices:")
    print(f"  direct : {large.describe()}")
    print(f"  cutqc  : {small.describe()}")
    print()

    # (a) Direct execution on the large, noisier device.
    direct = large.run(circuit, shots=8192, trajectories=24)
    chi2_direct = chi_square_loss(direct, truth)
    print(f"direct on {large.name}:")
    print(f"  chi^2 = {chi2_direct:.4f}, "
          f"P(solution) = {direct[solution]:.3f}")

    # (b) CutQC: cut onto the small device, reconstruct classically.
    pipeline = CutQC(
        circuit,
        max_subcircuit_qubits=small.num_qubits,
        backend=small.backend(shots=8192, trajectories=24),
    )
    cut = pipeline.cut()
    reconstructed = np.clip(pipeline.fd_query().probabilities, 0.0, None)
    reconstructed /= reconstructed.sum()
    chi2_cutqc = chi_square_loss(reconstructed, truth)
    print(f"CutQC via {small.name} "
          f"({cut.num_subcircuits} subcircuits, {cut.num_cuts} cut(s)):")
    print(f"  chi^2 = {chi2_cutqc:.4f}, "
          f"P(solution) = {reconstructed[solution]:.3f}")

    reduction = chi_square_reduction(chi2_direct, chi2_cutqc)
    print(f"\nchi^2 percentage reduction (Fig. 11 metric): {reduction:.0f}%")
    if reduction > 0:
        print("CutQC with the small device beats the big device — "
              "noisy quantum entanglement across the cut is replaced by "
              "noise-free classical postprocessing.")


if __name__ == "__main__":
    main()
