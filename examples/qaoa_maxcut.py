"""Extension workload: cut a QAOA MaxCut circuit and keep its physics.

QAOA is the canonical near-term variational application.  Its cost layer
applies one RZZ per problem-graph edge, so cutting the circuit mirrors
partitioning the problem graph.  This example cuts a 10-qubit ring QAOA
onto a 6-qubit budget and shows the reconstructed distribution yields the
same expected cut value <C> as the uncut circuit — the quantity a
variational optimizer actually consumes.

Run:  python examples/qaoa_maxcut.py
"""

import numpy as np

from repro import CutQC, simulate_probabilities
from repro.library import maxcut_cost, qaoa_maxcut, ring_graph
from repro.viz import compare_histograms


def main() -> None:
    num_qubits = 10
    edges = ring_graph(num_qubits)
    circuit = qaoa_maxcut(num_qubits, edges=edges, parameters=[1.2, 0.4])
    print(f"QAOA MaxCut: {num_qubits}-node ring, p=1, "
          f"{len(circuit)} gates; budget 6 qubits")

    pipeline = CutQC(circuit, max_subcircuit_qubits=6)
    cut = pipeline.cut()
    print(cut.summary())

    reconstructed = pipeline.fd_query().probabilities
    truth = simulate_probabilities(circuit)
    assert np.allclose(reconstructed, truth, atol=1e-8)

    cost_cut = maxcut_cost(reconstructed, edges, num_qubits)
    cost_truth = maxcut_cost(truth, edges, num_qubits)
    uniform = maxcut_cost(np.full(truth.size, 1 / truth.size), edges, num_qubits)
    print(f"\n<C> reconstructed : {cost_cut:.6f}")
    print(f"<C> ground truth  : {cost_truth:.6f}")
    print(f"<C> random guess  : {uniform:.6f}")
    assert abs(cost_cut - cost_truth) < 1e-8

    print("\ntop states (reconstructed vs ground truth):")
    print(compare_histograms(reconstructed, truth, top=5,
                             labels=("cutqc", "truth")))
    print("\nA variational optimizer driving gamma/beta through CutQC "
          "sees exactly the objective it would see on a big machine.")


if __name__ == "__main__":
    main()
