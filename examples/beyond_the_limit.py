"""Sample a 48-qubit circuit — beyond classical simulation practicality.

Following the paper's Fig. 10 protocol, subcircuit outputs are substituted
with synthetic distributions (no backend can evaluate this scale), and one
DD recursion samples a 2^12-bin blurred landscape of the 48-qubit output
— memory and compute match a real recursion at that definition.

Run:  python examples/beyond_the_limit.py
"""

import time

from repro import find_cuts
from repro.library import bv, supremacy
from repro.postprocess import RandomTensorProvider
from repro.postprocess.dd import DynamicDefinitionQuery


def interleaved_active_order(cut):
    """Spread active qubits across subcircuits to balance bin tensors."""
    queues = [[line.wire for line in sub.output_lines] for sub in cut.subcircuits]
    order = []
    while any(queues):
        for queue in queues:
            if queue:
                order.append(queue.pop(0))
    return order


def main() -> None:
    for name, circuit, budget in [
        ("bv-48", bv(48), 30),
        ("supremacy-42", supremacy(42, seed=0, depth=8), 30),
    ]:
        print(f"=== {name}: {circuit.num_qubits} qubits on a "
              f"{budget}-qubit device budget ===")
        began = time.perf_counter()
        solution = find_cuts(circuit, budget, method="heuristic", max_cuts=8)
        cut = solution.apply(circuit)
        print(f"cut search ({time.perf_counter() - began:.1f}s): "
              f"{cut.num_subcircuits} subcircuits "
              f"{[s.width for s in cut.subcircuits]}, K={cut.num_cuts}")

        provider = RandomTensorProvider(cut, seed=1)
        query = DynamicDefinitionQuery(
            provider,
            max_active_qubits=12,
            active_order=interleaved_active_order(cut),
        )
        began = time.perf_counter()
        recursion = query.step()
        elapsed = time.perf_counter() - began
        print(f"DD recursion: 2^12 = {recursion.probabilities.size} bins "
              f"in {elapsed:.2f}s")
        print(f"(a classical statevector of this circuit would need "
              f"{2 ** circuit.num_qubits * 16 / 1e12:.0f} TB of memory)\n")


if __name__ == "__main__":
    main()
