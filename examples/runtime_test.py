"""Artifact-style runtime benchmark (paper appendix A.5/A.6).

Runs the runtime experiment on a 10-qubit virtual QC and prints the
speedup of CutQC postprocessing over classical simulation — the same
workflow as the paper artifact's ``runtime_test.py``.  Adjust the
``RuntimeExperimentConfig`` fields (device sizes, benchmarks, circuit
sizes, workers) to customize, per appendix A.7.

Run:  python examples/runtime_test.py
"""

from repro.experiments import RuntimeExperimentConfig, run_runtime_experiment


def main() -> None:
    config = RuntimeExperimentConfig(
        benchmarks=("bv", "hwea", "adder", "supremacy"),
        device_sizes=(10,),
        max_circuit_qubits=14,
        workers=1,
    )
    records = run_runtime_experiment(config)

    header = ("benchmark", "qubits", "QC size", "cuts", "postprocess s",
              "simulation s", "speedup", "status")
    print("  ".join(f"{h:<13}" for h in header))
    for record in records:
        print("  ".join(f"{str(cell):<13}" for cell in record.row()))

    speedups = [r.speedup for r in records if r.speedup is not None]
    if speedups:
        print(f"\nbest speedup over classical simulation: "
              f"{max(speedups):.1f}x "
              f"(paper reports 60X-8600X with C+MKL on 16 nodes)")


if __name__ == "__main__":
    main()
