"""Dynamic definition on a dense-output circuit (Figs. 8 and 9 narrative).

Random "supremacy" circuits have dense, Porter-Thomas-like output.  The
DD query builds a blurred probability landscape and sharpens it by
recursively zooming into the most probable bins; the chi^2 loss against
the statevector ground truth decreases with every recursion.

Run:  python examples/supremacy_sampling.py
"""

import numpy as np

from repro import CutQC, simulate_probabilities
from repro.library import supremacy
from repro.metrics import chi_square_loss


def main() -> None:
    num_qubits = 12
    device_size = 8
    circuit = supremacy(num_qubits, seed=1, depth=8)
    print(f"supremacy circuit: {num_qubits} qubits (3x4 grid), "
          f"{len(circuit)} gates, device budget {device_size}")

    truth = simulate_probabilities(circuit)
    print(f"ground truth has {np.count_nonzero(truth > 1e-9)} populated "
          f"states out of {truth.size} — a dense distribution\n")

    pipeline = CutQC(circuit, max_subcircuit_qubits=device_size)
    cut = pipeline.cut()
    print(cut.summary())
    print()

    query = pipeline.dd_query(max_active_qubits=4, max_recursions=1)
    losses = [chi_square_loss(query.approximate_distribution(), truth)]
    print(f"recursion 1: chi^2 = {losses[-1]:.4f} "
          f"(definition 2^4 bins)")
    for step in range(2, 7):
        query.step()
        losses.append(chi_square_loss(query.approximate_distribution(), truth))
        print(f"recursion {step}: chi^2 = {losses[-1]:.4f} "
              f"({len(query.current_partition)} bins in the partition)")

    assert losses[-1] < losses[0], "zooming must sharpen the landscape"
    improvement = 100 * (losses[0] - losses[-1]) / losses[0]
    print(f"\nchi^2 improved by {improvement:.0f}% over "
          f"{len(losses) - 1} zoom recursions, without ever storing "
          "the full-definition distribution during postprocessing.")


if __name__ == "__main__":
    main()
