"""Quickstart: cut a 5-qubit circuit, run 3-qubit pieces, rebuild exactly.

This is the paper's Fig. 4 walkthrough: one cut on qubit 2 splits a
5-qubit circuit into two 3-qubit subcircuits whose variants fit a 3-qubit
device; classical postprocessing reproduces the uncut output exactly.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CutQC, QuantumCircuit, simulate_probabilities


def build_circuit() -> QuantumCircuit:
    """The Fig. 4 example circuit: a cZ ladder over 5 qubits."""
    circuit = QuantumCircuit(5)
    for qubit in range(5):
        circuit.h(qubit)
    circuit.cz(0, 1).cz(1, 2)
    circuit.t(2)
    circuit.cz(2, 3).cz(3, 4)
    return circuit


def main() -> None:
    circuit = build_circuit()
    print(f"Input circuit: {circuit.num_qubits} qubits, {len(circuit)} gates")
    print(circuit.draw())
    print()

    # The MIP cut searcher finds the cheapest cut onto a 3-qubit device.
    pipeline = CutQC(circuit, max_subcircuit_qubits=3)
    cut = pipeline.cut()
    print(cut.summary())
    print(f"cut positions: {[(c.wire, c.wire_index) for c in cut.cuts]}")
    print(f"search method: {pipeline.solution.method}, "
          f"objective (Eq. 14): {pipeline.solution.objective:.0f} FLOPs")
    print()

    # Evaluate every physical subcircuit variant and run an FD query.
    result = pipeline.fd_query()
    truth = simulate_probabilities(circuit)
    error = float(np.max(np.abs(result.probabilities - truth)))

    print("Full-definition reconstruction:")
    print(f"  Kronecker terms : {result.stats.num_terms}"
          f" ({result.stats.num_skipped} skipped by early termination)")
    print(f"  elapsed         : {result.stats.elapsed_seconds * 1e3:.2f} ms")
    print(f"  max |error| vs statevector ground truth: {error:.2e}")
    assert error < 1e-10, "reconstruction must equal the uncut output"

    print("\nTop-4 output states (reconstructed == ground truth):")
    top = np.argsort(result.probabilities)[::-1][:4]
    for index in top:
        bits = format(index, "05b")
        print(f"  |{bits}>  p = {result.probabilities[index]:.4f}")


if __name__ == "__main__":
    main()
