"""Artifact-style fidelity benchmark (paper appendix A.5/A.6).

Compares chi^2 of direct execution on the virtual 20-qubit Johannesburg
against CutQC through the virtual 5-qubit Bogota — the same workflow as
the paper artifact's ``fidelity_test.py`` (which queued on real IBMQ
devices).  Set ``mitigate=True`` or swap the devices to customize, per
appendix A.7.

Run:  python examples/fidelity_test.py
"""

from repro.experiments import FidelityExperimentConfig, run_fidelity_experiment


def main() -> None:
    config = FidelityExperimentConfig(
        cases=(("bv", 6), ("hwea", 6), ("adder", 6), ("supremacy", 6)),
        shots=8192,
        trajectories=16,
    )
    records = run_fidelity_experiment(config)

    header = ("benchmark", "qubits", "chi^2 direct", "chi^2 CutQC", "reduction")
    print("  ".join(f"{h:<13}" for h in header))
    reductions = []
    for record in records:
        print("  ".join(f"{str(cell):<13}" for cell in record.row()))
        if record.reduction_percent is not None:
            reductions.append(record.reduction_percent)
    if reductions:
        mean = sum(reductions) / len(reductions)
        print(f"\nmean chi^2 reduction: {mean:+.0f}% "
              f"(paper reports 21%-47% averages per benchmark)")


if __name__ == "__main__":
    main()
